// Tests for the Jacobi case study: the NavP variants against the
// sequential reference, across backends and decompositions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "apps/jacobi.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "support/error.h"

namespace navcpp::apps {
namespace {

double max_grid_diff(const JacobiGrid& a, const JacobiGrid& b) {
  double worst = 0.0;
  for (int r = 0; r < a.rows; ++r) {
    for (int c = 0; c < a.cols; ++c) {
      worst = std::max(worst, std::abs(a.at(r, c) - b.at(r, c)));
    }
  }
  return worst;
}

TEST(JacobiSequential, UniformGridIsAFixedPoint) {
  JacobiGrid g(8, 8);
  for (auto& x : g.u) x = 3.5;
  const JacobiGrid out = jacobi_sequential(g, 5);
  EXPECT_DOUBLE_EQ(max_grid_diff(out, g), 0.0);
}

TEST(JacobiSequential, HeatFlowsInFromTheHotEdge) {
  JacobiGrid g = JacobiGrid::heated_plate(16, 16);
  const JacobiGrid out = jacobi_sequential(g, 50);
  // Temperature decreases monotonically away from the heated top edge
  // along the center column.
  for (int r = 1; r + 2 < out.rows; ++r) {
    EXPECT_GT(out.at(r, 8), out.at(r + 1, 8));
  }
  // And everything sits strictly between the boundary temperatures.
  for (int r = 1; r + 1 < out.rows; ++r) {
    EXPECT_GT(out.at(r, 8), 0.0);
    EXPECT_LT(out.at(r, 8), 1.0);
  }
}

TEST(JacobiSequential, ConvergesTowardHarmonicEquilibrium) {
  JacobiGrid g = JacobiGrid::heated_plate(12, 12);
  const JacobiGrid a = jacobi_sequential(g, 200);
  const JacobiGrid b = jacobi_sequential(g, 400);
  // Successive iterates approach each other (contraction).
  EXPECT_LT(max_grid_diff(a, b), 0.02);
}

TEST(JacobiSequential, ModeledTimeIncludesPaging) {
  perfmodel::Testbed tb = perfmodel::Testbed::paper();
  const double small = jacobi_sequential_seconds(tb, 512, 512, 10);
  EXPECT_GT(small, 0.0);
  // A grid twice the RAM pages.
  const double big = jacobi_sequential_seconds(tb, 8192, 8192, 10);
  const double big_core = 6.0 * 8190.0 * 8190.0 * 10 / tb.flops_per_sec;
  EXPECT_GT(big, big_core * 1.01);
}

struct CaseJacobi {
  std::string backend;
  JacobiVariant variant;
  int rows;
  int cols;
  int sweeps;
  int pes;
};

class JacobiCorrectness : public ::testing::TestWithParam<CaseJacobi> {};

TEST_P(JacobiCorrectness, MatchesSequentialBitForBit) {
  const auto& p = GetParam();
  JacobiConfig cfg;
  cfg.rows = p.rows;
  cfg.cols = p.cols;
  cfg.sweeps = p.sweeps;
  JacobiGrid initial = JacobiGrid::heated_plate(p.rows, p.cols);
  // Perturb the interior deterministically so symmetric bugs can't hide.
  for (int r = 1; r + 1 < p.rows; ++r) {
    for (int c = 1; c + 1 < p.cols; ++c) {
      initial.at(r, c) = 0.01 * ((r * 31 + c * 17) % 7);
    }
  }
  const JacobiGrid want = jacobi_sequential(initial, p.sweeps);

  std::unique_ptr<machine::Engine> engine;
  if (p.backend == "sim") {
    engine = std::make_unique<machine::SimMachine>(p.pes, cfg.testbed.lan);
  } else {
    auto m = std::make_unique<machine::ThreadedMachine>(p.pes);
    m->set_stall_timeout(10.0);
    engine = std::move(m);
  }
  JacobiStats stats;
  const JacobiGrid got = jacobi_navp(*engine, cfg, p.variant, initial,
                                     &stats);
  EXPECT_DOUBLE_EQ(max_grid_diff(got, want), 0.0)
      << "the distributed solver must match the reference bit for bit";
  if (p.pes > 1 || p.variant != JacobiVariant::kDataflow) {
    // Stationary dataflow agents on one PE never migrate at all.
    EXPECT_GT(stats.hops, 0u);
  }
}

std::string jacobi_name(const ::testing::TestParamInfo<CaseJacobi>& info) {
  const auto& p = info.param;
  const char* v = p.variant == JacobiVariant::kDsc         ? "_dsc_"
                  : p.variant == JacobiVariant::kPipelined ? "_pipe_"
                                                           : "_flow_";
  return p.backend + v + "r" + std::to_string(p.rows) + "s" +
         std::to_string(p.sweeps) + "p" + std::to_string(p.pes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JacobiCorrectness,
    ::testing::Values(
        CaseJacobi{"sim", JacobiVariant::kDsc, 14, 10, 4, 3},
        CaseJacobi{"sim", JacobiVariant::kDsc, 18, 12, 7, 4},
        CaseJacobi{"sim", JacobiVariant::kDsc, 10, 24, 3, 2},
        CaseJacobi{"sim", JacobiVariant::kDsc, 11, 8, 5, 1},
        CaseJacobi{"sim", JacobiVariant::kPipelined, 14, 10, 4, 3},
        CaseJacobi{"sim", JacobiVariant::kPipelined, 18, 12, 7, 4},
        CaseJacobi{"sim", JacobiVariant::kPipelined, 26, 9, 12, 6},
        CaseJacobi{"sim", JacobiVariant::kPipelined, 10, 16, 9, 2},
        CaseJacobi{"sim", JacobiVariant::kDataflow, 14, 10, 4, 3},
        CaseJacobi{"sim", JacobiVariant::kDataflow, 18, 12, 7, 4},
        CaseJacobi{"sim", JacobiVariant::kDataflow, 26, 9, 12, 6},
        CaseJacobi{"sim", JacobiVariant::kDataflow, 10, 16, 9, 1},
        CaseJacobi{"threaded", JacobiVariant::kDsc, 14, 10, 4, 3},
        CaseJacobi{"threaded", JacobiVariant::kPipelined, 14, 10, 6, 3},
        CaseJacobi{"threaded", JacobiVariant::kPipelined, 18, 12, 8, 4},
        CaseJacobi{"threaded", JacobiVariant::kDataflow, 14, 10, 6, 3},
        CaseJacobi{"threaded", JacobiVariant::kDataflow, 18, 12, 8, 4}),
    jacobi_name);

TEST(JacobiNavp, RejectsIndivisibleDecomposition) {
  machine::SimMachine m(3);
  JacobiConfig cfg;
  cfg.rows = 12;  // 10 interior rows over 3 PEs
  cfg.cols = 8;
  cfg.sweeps = 2;
  const JacobiGrid g = JacobiGrid::heated_plate(12, 8);
  EXPECT_THROW(jacobi_navp(m, cfg, JacobiVariant::kDsc, g),
               support::LogicError);
}

TEST(JacobiNavp, EachStageImprovesOnTheSimulatedTestbed) {
  JacobiConfig cfg;
  cfg.rows = 770;  // 768 interior rows over 4 PEs
  cfg.cols = 768;
  cfg.sweeps = 24;
  const JacobiGrid g = JacobiGrid::heated_plate(cfg.rows, cfg.cols);

  auto run = [&](JacobiVariant v) {
    machine::SimMachine m(4, cfg.testbed.lan);
    JacobiStats stats;
    jacobi_navp(m, cfg, v, g, &stats);
    return stats.seconds;
  };
  const double dsc = run(JacobiVariant::kDsc);
  const double pipe = run(JacobiVariant::kPipelined);
  const double flow = run(JacobiVariant::kDataflow);
  const double seq = jacobi_sequential_seconds(cfg.testbed, cfg.rows,
                                               cfg.cols, cfg.sweeps);
  // DSC ~ sequential; traveling-agent pipelining is bounded near P/2 by
  // the two-way wavefront dependence; stationary dataflow approaches P.
  EXPECT_LT(seq / dsc, 1.05);
  EXPECT_GT(seq / dsc, 0.5);
  EXPECT_LT(pipe, dsc);
  EXPECT_LT(flow, pipe);
  EXPECT_GT(seq / pipe, 1.2);
  EXPECT_LT(seq / pipe, 2.4);  // <= P/2 + overheads slack
  EXPECT_GT(seq / flow, 2.5);  // well past the pipeline bound
}

TEST(JacobiNavp, DeterministicVirtualTime) {
  JacobiConfig cfg;
  cfg.rows = 66;
  cfg.cols = 64;
  cfg.sweeps = 8;
  const JacobiGrid g = JacobiGrid::heated_plate(cfg.rows, cfg.cols);
  auto once = [&] {
    machine::SimMachine m(4, cfg.testbed.lan);
    JacobiStats stats;
    jacobi_navp(m, cfg, JacobiVariant::kPipelined, g, &stats);
    return stats.seconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

}  // namespace
}  // namespace navcpp::apps
