// Tests for the perf-trajectory pieces: the minimal JSON parser in
// support/json.h, the navcpp.bench/v1 validator/emitter, and the
// bench_compare regression classifier.  The fixture documents below are the
// same shape as the committed BENCH_*.json files.
#include <gtest/gtest.h>

#include <string>

#include "harness/bench_compare.h"
#include "harness/bench_runner.h"
#include "support/json.h"

namespace {

using navcpp::harness::BenchComparison;
using navcpp::harness::BenchMetric;
using navcpp::harness::BenchOptions;
using navcpp::harness::BenchReport;
using navcpp::harness::compare_bench_reports;
using navcpp::harness::run_bench_suite;
using navcpp::harness::validate_bench_json;
using navcpp::support::json_parse;
using navcpp::support::JsonValue;

// ---------------------------------------------------------------- JSON --

TEST(Json, ParsesScalarsArraysAndObjects) {
  JsonValue v;
  std::string error;
  ASSERT_TRUE(json_parse(
      R"({"a": 1.5, "b": [true, false, null], "c": {"d": "x\nA"}})", &v,
      &error))
      << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  const JsonValue* b = v.find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->as_array().size(), 3u);
  EXPECT_TRUE(b->as_array()[0].as_bool());
  EXPECT_TRUE(b->as_array()[2].is_null());
  const JsonValue* d = v.find("c")->find("d");
  ASSERT_TRUE(d != nullptr);
  EXPECT_EQ(d->as_string(), "x\nA");
}

TEST(Json, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(json_parse("{", &v, &error));
  EXPECT_FALSE(json_parse("{\"a\": }", &v, &error));
  EXPECT_FALSE(json_parse("[1, 2,]", &v, &error));
  EXPECT_FALSE(json_parse("{} trailing", &v, &error));
  EXPECT_FALSE(json_parse("", &v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Json, FindReturnsNullForMissingKeysAndNonObjects) {
  JsonValue v;
  ASSERT_TRUE(json_parse("{\"a\": [1]}", &v, nullptr));
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.find("a")->find("a"), nullptr);  // arrays have no keys
}

// --------------------------------------------------- emit + validate --

std::string fixture(const std::string& rev, double hops, double gemm,
                    double jacobi) {
  BenchReport r;
  r.revision = rev;
  r.quick = false;
  r.hardware_threads = 1;
  r.metrics["runtime.threaded.hops_per_sec"] =
      BenchMetric{hops, "hops/s", true};
  r.metrics["kernels.gemm_gflops"] = BenchMetric{gemm, "GFLOP/s", true};
  r.metrics["sweep.jacobi_wall_seconds"] = BenchMetric{jacobi, "s", false};
  return r.to_json();
}

TEST(BenchJson, EmitterOutputPassesValidation) {
  std::string error;
  EXPECT_TRUE(validate_bench_json(fixture("abc1234", 4e5, 1.5, 0.8), &error))
      << error;
}

TEST(BenchJson, ValidatorRejectsWrongSchemaAndShapes) {
  std::string error;
  EXPECT_FALSE(validate_bench_json("not json at all", &error));
  EXPECT_FALSE(validate_bench_json("[1, 2]", &error));
  EXPECT_FALSE(validate_bench_json(
      R"({"schema": "other/v9", "revision": "r", "quick": false,
          "metrics": {"m": {"value": 1, "unit": "x",
                            "higher_is_better": true}}})",
      &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  // Missing metrics object entirely.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema": "navcpp.bench/v1", "revision": "r", "quick": false})",
      &error));
  // Metric with a non-numeric value.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema": "navcpp.bench/v1", "revision": "r", "quick": false,
          "metrics": {"m": {"value": "fast", "unit": "x",
                            "higher_is_better": true}}})",
      &error));
  // Metric missing its direction.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema": "navcpp.bench/v1", "revision": "r", "quick": false,
          "metrics": {"m": {"value": 1, "unit": "x"}}})",
      &error));
  // Empty revision.
  EXPECT_FALSE(validate_bench_json(
      R"({"schema": "navcpp.bench/v1", "revision": "", "quick": false,
          "metrics": {"m": {"value": 1, "unit": "x",
                            "higher_is_better": true}}})",
      &error));
}

// -------------------------------------------------------- comparison --

TEST(BenchCompare, FlagsRegressionsInBothDirections) {
  // hops/s (higher better) halves, jacobi wall (lower better) doubles:
  // both are regressions.  gemm improves.
  const BenchComparison cmp =
      compare_bench_reports(fixture("old1234", 4e5, 1.0, 0.5),
                            fixture("new5678", 2e5, 2.0, 1.0), 0.10);
  ASSERT_TRUE(cmp.parse_ok) << cmp.parse_error;
  EXPECT_EQ(cmp.compared, 3);
  EXPECT_EQ(cmp.regressions, 2);
  EXPECT_EQ(cmp.improvements, 1);
  EXPECT_NE(cmp.report.find("REGRESSION"), std::string::npos);
}

TEST(BenchCompare, ToleranceAbsorbsSmallMoves) {
  // Every metric moves 5%; at 10% tolerance nothing regresses.
  const BenchComparison cmp =
      compare_bench_reports(fixture("old1234", 4.00e5, 1.00, 0.500),
                            fixture("new5678", 3.80e5, 0.95, 0.525), 0.10);
  ASSERT_TRUE(cmp.parse_ok);
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_EQ(cmp.improvements, 0);
  // The same moves at 2% tolerance all regress.
  EXPECT_EQ(compare_bench_reports(fixture("o", 4.00e5, 1.00, 0.500),
                                  fixture("n", 3.80e5, 0.95, 0.525), 0.02)
                .regressions,
            3);
}

TEST(BenchCompare, MetricsInOnlyOneReportAreListedNotCounted) {
  BenchReport old_r;
  old_r.revision = "old1234";
  old_r.metrics["dropped.metric"] = BenchMetric{1.0, "x", true};
  old_r.metrics["shared.metric"] = BenchMetric{1.0, "x", true};
  BenchReport new_r;
  new_r.revision = "new5678";
  new_r.metrics["shared.metric"] = BenchMetric{1.0, "x", true};
  new_r.metrics["added.metric"] = BenchMetric{9.0, "x", true};
  const BenchComparison cmp =
      compare_bench_reports(old_r.to_json(), new_r.to_json(), 0.10);
  ASSERT_TRUE(cmp.parse_ok);
  EXPECT_EQ(cmp.compared, 1);
  EXPECT_EQ(cmp.regressions, 0);
  EXPECT_NE(cmp.report.find("dropped"), std::string::npos);
  EXPECT_NE(cmp.report.find("new"), std::string::npos);
}

TEST(BenchCompare, InvalidInputReportsParseError) {
  const BenchComparison cmp =
      compare_bench_reports("nonsense", fixture("r", 1, 1, 1), 0.10);
  EXPECT_FALSE(cmp.parse_ok);
  EXPECT_NE(cmp.parse_error.find("old report"), std::string::npos);
  const BenchComparison cmp2 =
      compare_bench_reports(fixture("r", 1, 1, 1), "{\"schema\": 3}", 0.10);
  EXPECT_FALSE(cmp2.parse_ok);
  EXPECT_NE(cmp2.parse_error.find("new report"), std::string::npos);
}

// ------------------------------------------------------- whole suite --

TEST(BenchSuite, QuickRunEmitsAllHeadlineMetricsAndValidates) {
  BenchOptions options;
  options.quick = true;
  options.revision = "testrun";
  const BenchReport report = run_bench_suite(options);
  for (const char* name :
       {"runtime.threaded.hops_per_sec", "runtime.threaded.hops_per_sec_4pe",
        "runtime.sim.hops_per_sec", "runtime.proc.hops_per_sec",
        "kernels.gemm_gflops", "sweep.jacobi_wall_seconds",
        "sweep.lu_wall_seconds", "obs.mean_pe_utilization"}) {
    ASSERT_TRUE(report.metrics.count(name) == 1) << name;
    EXPECT_GT(report.metrics.at(name).value, 0.0) << name;
  }
  std::string error;
  EXPECT_TRUE(validate_bench_json(report.to_json(), &error)) << error;
  // Comparing a report against itself finds no regression at any tolerance.
  const BenchComparison self =
      compare_bench_reports(report.to_json(), report.to_json(), 0.01);
  ASSERT_TRUE(self.parse_ok);
  EXPECT_EQ(self.regressions, 0);
  EXPECT_EQ(self.compared, static_cast<int>(report.metrics.size()));
}

}  // namespace
