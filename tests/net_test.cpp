// Unit tests for topologies and the LogGP-style network model.
#include <gtest/gtest.h>

#include "net/link_model.h"
#include "net/topology.h"
#include "support/error.h"

namespace navcpp::net {
namespace {

TEST(Topology1D, NeighborsWrapAround) {
  Topology1D t(3);
  EXPECT_EQ(t.east(0), 1);
  EXPECT_EQ(t.east(2), 0);
  EXPECT_EQ(t.west(0), 2);
  EXPECT_EQ(t.west(1), 0);
}

TEST(Topology1D, RejectsBadIds) {
  Topology1D t(3);
  EXPECT_THROW(t.node(-1), support::LogicError);
  EXPECT_THROW(t.node(3), support::LogicError);
  EXPECT_THROW(Topology1D(0), support::LogicError);
}

TEST(Topology2D, LinearizationRowMajor) {
  Topology2D t(3, 3);
  EXPECT_EQ(t.node(0, 0), 0);
  EXPECT_EQ(t.node(0, 2), 2);
  EXPECT_EQ(t.node(2, 1), 7);
  EXPECT_EQ(t.row_of(7), 2);
  EXPECT_EQ(t.col_of(7), 1);
}

TEST(Topology2D, ToroidalNeighbors) {
  Topology2D t(3, 3);
  const int pe = t.node(0, 0);
  EXPECT_EQ(t.east(pe), t.node(0, 1));
  EXPECT_EQ(t.west(pe), t.node(0, 2));   // wrap
  EXPECT_EQ(t.south(pe), t.node(1, 0));
  EXPECT_EQ(t.north(pe), t.node(2, 0));  // wrap
}

TEST(Topology2D, NonSquareGrids) {
  Topology2D t(2, 4);
  EXPECT_EQ(t.pe_count(), 8);
  EXPECT_EQ(t.node(1, 3), 7);
  EXPECT_EQ(t.east(t.node(1, 3)), t.node(1, 0));
  EXPECT_EQ(t.south(t.node(1, 2)), t.node(0, 2));
}

LinkParams test_params() {
  LinkParams p;
  p.send_overhead = 0.001;
  p.recv_overhead = 0.002;
  p.latency = 0.010;
  p.bandwidth = 1000.0;  // 1000 B/s: easy arithmetic
  p.local_delivery = 0.0001;
  return p;
}

TEST(NetworkModel, SingleMessageTiming) {
  NetworkModel net(2, test_params());
  const Transfer tr = net.admit(0, 1, 500, /*when=*/1.0);
  // ready = 1.0 + 0.001; wire = 0.5s; delivered = start + latency + wire.
  EXPECT_DOUBLE_EQ(tr.sender_cpu_free, 1.001);
  EXPECT_DOUBLE_EQ(tr.delivered_at, 1.001 + 0.010 + 0.5);
  EXPECT_DOUBLE_EQ(tr.recv_overhead, 0.002);
}

TEST(NetworkModel, SenderNicSerializesBackToBackSends) {
  NetworkModel net(3, test_params());
  const Transfer a = net.admit(0, 1, 1000, 0.0);  // occupies NIC 1s
  const Transfer b = net.admit(0, 2, 1000, 0.0);  // must queue behind it
  EXPECT_DOUBLE_EQ(a.delivered_at, 0.001 + 0.010 + 1.0);
  // b starts when the sender NIC frees at 1.001.
  EXPECT_DOUBLE_EQ(b.delivered_at, 1.001 + 0.010 + 1.0);
}

TEST(NetworkModel, ReceiverNicSerializesConvergingSends) {
  NetworkModel net(3, test_params());
  const Transfer a = net.admit(0, 2, 1000, 0.0);
  const Transfer b = net.admit(1, 2, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a.delivered_at, 1.011);
  // b's receive window must wait for dst NIC: in_free = 1.011.
  EXPECT_GE(b.delivered_at, a.delivered_at + 1.0);
}

TEST(NetworkModel, DisjointPairsDoNotContend) {
  // Collision-free switch: 0->1 and 2->3 proceed in parallel.
  NetworkModel net(4, test_params());
  const Transfer a = net.admit(0, 1, 1000, 0.0);
  const Transfer b = net.admit(2, 3, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a.delivered_at, b.delivered_at);
}

TEST(NetworkModel, LocalDeliveryIsCheap) {
  NetworkModel net(2, test_params());
  const Transfer tr = net.admit(1, 1, 1 << 20, 5.0);
  EXPECT_DOUBLE_EQ(tr.delivered_at, 5.0001);
  EXPECT_DOUBLE_EQ(tr.recv_overhead, 0.0);
}

TEST(NetworkModel, StatsCountMessagesAndBytes) {
  NetworkModel net(2, test_params());
  (void)net.admit(0, 1, 100, 0.0);
  (void)net.admit(1, 0, 200, 0.0);
  (void)net.admit(0, 0, 300, 0.0);
  EXPECT_EQ(net.message_count(), 3u);
  EXPECT_EQ(net.byte_count(), 600u);
  net.reset_stats();
  EXPECT_EQ(net.message_count(), 0u);
  EXPECT_EQ(net.byte_count(), 0u);
}

// Regression: reset_stats() zeroed the counters but left out_free_/in_free_
// at their high-water marks, so the "fresh" model delayed its first messages
// behind transfers from the previous life.  reset() must restore
// construction-time behavior exactly.
TEST(NetworkModel, ResetClearsNicOccupancy) {
  NetworkModel net(2, test_params());
  const Transfer fresh = net.admit(0, 1, 1000, 0.0);  // occupies NICs ~1s
  (void)net.admit(0, 1, 1000, 0.0);                   // stack more occupancy
  net.reset();
  EXPECT_EQ(net.message_count(), 0u);
  EXPECT_EQ(net.byte_count(), 0u);
  const Transfer again = net.admit(0, 1, 1000, 0.0);
  EXPECT_DOUBLE_EQ(again.delivered_at, fresh.delivered_at)
      << "stale NIC occupancy survived reset()";
  EXPECT_DOUBLE_EQ(again.sender_cpu_free, fresh.sender_cpu_free);
}

TEST(NetworkModel, RejectsBadPeIds) {
  NetworkModel net(2, test_params());
  EXPECT_THROW((void)net.admit(-1, 0, 1, 0.0), support::LogicError);
  EXPECT_THROW((void)net.admit(0, 2, 1, 0.0), support::LogicError);
}

}  // namespace
}  // namespace navcpp::net
