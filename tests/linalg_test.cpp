// Tests for matrices, GEMM kernels, block grids, and staggering analysis.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "linalg/block.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/stagger.h"
#include "support/error.h"

namespace navcpp::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  m(1, 2) = 5.0;
  EXPECT_EQ(m(1, 2), 5.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m.at(2, 0), support::LogicError);
  EXPECT_THROW((void)m.at(0, -1), support::LogicError);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = Matrix::random(8, 8, 1);
  const Matrix i = Matrix::identity(8);
  EXPECT_LT(max_abs_diff(multiply(a, i), a), 1e-12);
  EXPECT_LT(max_abs_diff(multiply(i, a), a), 1e-12);
}

TEST(Matrix, RandomIsDeterministicInSeed) {
  EXPECT_EQ(Matrix::random(5, 5, 42), Matrix::random(5, 5, 42));
  EXPECT_NE(Matrix::random(5, 5, 42), Matrix::random(5, 5, 43));
}

TEST(Matrix, IotaLayoutRowMajor) {
  const Matrix m = Matrix::iota(2, 3);
  EXPECT_EQ(m(0, 0), 0.0);
  EXPECT_EQ(m(0, 2), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(Matrix, WindowSharesStorage) {
  Matrix m = Matrix::iota(4, 4);
  MatrixView w = m.window(1, 1, 2, 2);
  EXPECT_EQ(w(0, 0), 5.0);
  w(0, 0) = 99.0;
  EXPECT_EQ(m(1, 1), 99.0);
  EXPECT_THROW((void)m.window(3, 3, 2, 2), support::LogicError);
}

TEST(Gemm, KernelsAgreeOnRandomMatrices) {
  for (auto [m, n, k] : {std::tuple{4, 4, 4}, {7, 3, 5}, {1, 9, 2}}) {
    const Matrix a = Matrix::random(m, k, 11);
    const Matrix b = Matrix::random(k, n, 12);
    Matrix c1(m, n), c2(m, n);
    gemm_acc_naive(c1.view(), a.view(), b.view());
    gemm_acc(c2.view(), a.view(), b.view());
    EXPECT_LT(max_abs_diff(c1, c2), 1e-12);
  }
}

TEST(Gemm, AccumulatesIntoExistingC) {
  const Matrix a = Matrix::identity(3);
  const Matrix b = Matrix::iota(3, 3);
  Matrix c = Matrix::iota(3, 3);
  gemm_acc(c.view(), a.view(), b.view());  // c += I*b = 2*iota
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(c(i, j), 2.0 * (3 * i + j));
    }
  }
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2), c(2, 2);
  EXPECT_THROW(gemm_acc(c.view(), a.view(), b.view()), support::LogicError);
  Matrix b2(3, 2), cbad(3, 2);
  EXPECT_THROW(gemm_acc(cbad.view(), a.view(), b2.view()),
               support::LogicError);
}

TEST(Gemm, OnWindowsComputesSubproduct) {
  // Multiply the top-left 2x2 corners only.
  const Matrix a = Matrix::random(4, 4, 3);
  const Matrix b = Matrix::random(4, 4, 4);
  Matrix c(4, 4);
  gemm_acc(c.window(0, 0, 2, 2), a.window(0, 0, 2, 2), b.window(0, 0, 2, 2));
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      double want = 0.0;
      for (int k = 0; k < 2; ++k) want += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), want, 1e-12);
    }
  }
  EXPECT_EQ(c(3, 3), 0.0);  // untouched outside the window
}

TEST(GemmFlops, CountsMultiplyAdd) {
  EXPECT_DOUBLE_EQ(gemm_flops(2, 3, 4), 48.0);
}

class BlockGridRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockGridRoundTrip, ToBlocksFromBlocksIsIdentity) {
  const auto [order, block] = GetParam();
  const Matrix m = Matrix::random(order, order, 99);
  const auto grid = to_blocks(m, block);
  EXPECT_EQ(from_blocks(grid), m);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockGridRoundTrip,
    ::testing::Values(std::tuple{6, 2}, std::tuple{6, 3}, std::tuple{6, 4},
                      std::tuple{7, 3}, std::tuple{1, 1}, std::tuple{5, 8},
                      std::tuple{16, 4}, std::tuple{9, 2}));

TEST(BlockGrid, EdgeBlocksAreSmaller) {
  BlockGrid<RealStorage> grid(7, 3);  // blocks: 3,3,1
  EXPECT_EQ(grid.nb(), 3);
  EXPECT_EQ(grid.block_rows(0), 3);
  EXPECT_EQ(grid.block_rows(2), 1);
  EXPECT_EQ(grid.at(2, 2).rows, 1);
  EXPECT_EQ(grid.at(2, 0).cols, 3);
}

TEST(BlockGrid, PhantomMatchesRealShapes) {
  BlockGrid<RealStorage> real(10, 4);
  BlockGrid<PhantomStorage> phantom(10, 4);
  ASSERT_EQ(real.nb(), phantom.nb());
  for (int bi = 0; bi < real.nb(); ++bi) {
    for (int bj = 0; bj < real.nb(); ++bj) {
      EXPECT_EQ(real.at(bi, bj).rows, phantom.at(bi, bj).rows);
      EXPECT_EQ(real.at(bi, bj).cols, phantom.at(bi, bj).cols);
      EXPECT_EQ(block_wire_bytes(real.at(bi, bj)),
                block_wire_bytes(phantom.at(bi, bj)));
    }
  }
}

TEST(BlockGrid, BlockedMultiplyMatchesDense) {
  const int order = 12, block = 4;
  const Matrix a = Matrix::random(order, order, 5);
  const Matrix b = Matrix::random(order, order, 6);
  auto ga = to_blocks(a, block);
  auto gb = to_blocks(b, block);
  BlockGrid<RealStorage> gc(order, block);
  for (int bi = 0; bi < ga.nb(); ++bi) {
    for (int bj = 0; bj < ga.nb(); ++bj) {
      for (int bk = 0; bk < ga.nb(); ++bk) {
        RealStorage::gemm_acc(gc.at(bi, bj), ga.at(bi, bk), gb.at(bk, bj));
      }
    }
  }
  EXPECT_LT(max_abs_diff(from_blocks(gc), multiply(a, b)), 1e-10);
}

TEST(BlockGrid, RejectsBadParameters) {
  EXPECT_THROW((BlockGrid<RealStorage>(0, 4)), support::LogicError);
  EXPECT_THROW((BlockGrid<RealStorage>(4, 0)), support::LogicError);
}

TEST(PhantomStorage, GemmChecksShapes) {
  PhantomBlock c(2, 2), a(2, 3), b(3, 2);
  PhantomStorage::gemm_acc(c, a, b);  // fine
  PhantomBlock bad(4, 2);
  EXPECT_THROW(PhantomStorage::gemm_acc(c, a, bad), support::LogicError);
}

// --- staggering -----------------------------------------------------------

TEST(Stagger, ForwardIsCyclicShift) {
  // Row 1 on 3 PEs: k -> (k-1) mod 3 — a 3-cycle.
  const auto perm = forward_row_permutation(1, 3);
  EXPECT_EQ(perm, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(cycle_lengths(perm), (std::vector<int>{3}));
  EXPECT_FALSE(is_involution(perm));
}

TEST(Stagger, ReverseIsInvolutionForAllRowsAndSizes) {
  for (int n = 1; n <= 16; ++n) {
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(is_involution(reverse_row_permutation(i, n)))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Stagger, RowZeroForwardIsIdentity) {
  const auto perm = forward_row_permutation(0, 5);
  for (int k = 0; k < 5; ++k) EXPECT_EQ(perm[static_cast<size_t>(k)], k);
  EXPECT_EQ(min_comm_phases(perm), 0);
}

TEST(Stagger, PhaseCountsPerCycleStructure) {
  EXPECT_EQ(min_comm_phases({0, 1, 2}), 0);     // identity
  EXPECT_EQ(min_comm_phases({1, 0}), 2);        // exchange
  EXPECT_EQ(min_comm_phases({1, 2, 0}), 3);     // 3-cycle
  EXPECT_EQ(min_comm_phases({1, 2, 3, 0}), 2);  // 4-cycle
  EXPECT_EQ(min_comm_phases({1, 0, 3, 2}), 2);  // two exchanges
}

TEST(Stagger, RejectsNonPermutations) {
  EXPECT_THROW(min_comm_phases({0, 0, 1}), support::LogicError);
  EXPECT_THROW(min_comm_phases({0, 3}), support::LogicError);
}

// The paper's claim, verified over a sweep of network sizes: reverse
// staggering needs at most 2 phases; forward staggering needs 3 whenever
// some shift produces an odd cycle (any N >= 3).
class StaggerPhases : public ::testing::TestWithParam<int> {};

TEST_P(StaggerPhases, ReverseNeverExceedsTwoPhases) {
  EXPECT_LE(reverse_stagger_phases(GetParam()), 2);
}

TEST_P(StaggerPhases, ForwardNeedsThreeUnlessPowerOfTwo) {
  // Shift-by-i on Z_n has cycles of length n/gcd(n,i); an odd cycle (> 1)
  // exists iff n is not a power of two.  "Often requires three" is exactly
  // the non-power-of-two case.
  const int n = GetParam();
  const bool power_of_two = (n & (n - 1)) == 0;
  if (n >= 3 && !power_of_two) {
    EXPECT_EQ(forward_stagger_phases(n), 3);
  } else {
    EXPECT_LE(forward_stagger_phases(n), 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StaggerPhases,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16,
                                           25));

TEST(Stagger, ForwardAndReverseAgreeWithPointwiseHelpers) {
  const int n = 6;
  for (int i = 0; i < n; ++i) {
    const auto fwd = forward_row_permutation(i, n);
    const auto rev = reverse_row_permutation(i, n);
    for (int k = 0; k < n; ++k) {
      EXPECT_EQ(fwd[static_cast<size_t>(k)], forward_stagger_col(i, k, n));
      EXPECT_EQ(rev[static_cast<size_t>(k)], reverse_stagger_col(i, k, n));
    }
  }
}

}  // namespace
}  // namespace navcpp::linalg
