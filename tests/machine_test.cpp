// Tests for the two Engine backends: SimMachine and ThreadedMachine.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "machine/chaos_machine.h"
#include "machine/fault_machine.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "net/reliable_channel.h"
#include "obs/metrics.h"
#include "support/error.h"

namespace navcpp::machine {
namespace {

net::LinkParams fast_link() {
  net::LinkParams p;
  p.send_overhead = 0.0;
  p.recv_overhead = 0.0;
  p.latency = 0.0;
  p.bandwidth = 1e12;
  p.local_delivery = 0.0;
  return p;
}

TEST(SimMachine, ChargeAdvancesOnlyThatPe) {
  SimMachine m(3);
  m.charge(1, 2.5);
  EXPECT_DOUBLE_EQ(m.now(0), 0.0);
  EXPECT_DOUBLE_EQ(m.now(1), 2.5);
  EXPECT_DOUBLE_EQ(m.now(2), 0.0);
  EXPECT_DOUBLE_EQ(m.finish_time(), 2.5);
}

TEST(SimMachine, PostedActionsRunAtPeClock) {
  SimMachine m(2, fast_link());
  std::vector<double> at;
  m.task_started();
  m.post(0, [&] {
    m.charge(0, 1.0);
    at.push_back(m.now(0));
    m.post(0, [&] {
      at.push_back(m.now(0));
      m.task_finished();
    });
  });
  m.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 1.0);
  EXPECT_DOUBLE_EQ(at[1], 1.0);
}

TEST(SimMachine, BusyPeDelaysArrivals) {
  // Two actions posted to PE 0 at time 0; the first charges 5s, so the
  // second starts at 5s even though it "arrived" at 0.
  SimMachine m(1, fast_link());
  double second_start = -1.0;
  m.post(0, [&] { m.charge(0, 5.0); });
  m.post(0, [&] { second_start = m.now(0); });
  m.run();
  EXPECT_DOUBLE_EQ(second_start, 5.0);
}

TEST(SimMachine, TransmitDeliversAtModeledTime) {
  net::LinkParams p;
  p.send_overhead = 0.001;
  p.recv_overhead = 0.002;
  p.latency = 0.01;
  p.bandwidth = 1000.0;
  SimMachine m(2, p);
  double delivered = -1.0;
  m.post(0, [&] {
    m.charge(0, 1.0);
    m.transmit(0, 1, 500, [&] { delivered = m.now(1); });
  });
  m.run();
  // send at t=1.0: cpu free 1.001, wire 0.5, latency 0.01,
  // recv_overhead charged on arrival.
  EXPECT_DOUBLE_EQ(delivered, 1.001 + 0.01 + 0.5 + 0.002);
  EXPECT_DOUBLE_EQ(m.now(0), 1.001);
}

TEST(SimMachine, DeterministicAcrossRuns) {
  auto run_once = [] {
    SimMachine m(4);
    for (int pe = 0; pe < 4; ++pe) {
      m.post(pe, [&m, pe] {
        m.charge(pe, 0.5 * (pe + 1));
        m.transmit(pe, (pe + 1) % 4, 1024, [&m, pe] {
          m.charge((pe + 1) % 4, 0.25);
        });
      });
    }
    m.run();
    return m.finish_time();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimMachine, StallWithLiveTasksThrowsDeadlock) {
  SimMachine m(1);
  m.task_started();  // never finished, nothing queued
  EXPECT_THROW(m.run(), support::DeadlockError);
}

TEST(SimMachine, DeadlockMessageIncludesBlockedReport) {
  SimMachine m(1);
  m.task_started();
  m.set_blocked_reporter([] { return std::string("WHO-IS-BLOCKED"); });
  try {
    m.run();
    FAIL() << "expected DeadlockError";
  } catch (const support::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("WHO-IS-BLOCKED"),
              std::string::npos);
  }
}

TEST(SimMachine, ActionExceptionPropagates) {
  SimMachine m(1);
  m.post(0, [] { throw support::ConfigError("boom"); });
  EXPECT_THROW(m.run(), support::ConfigError);
}

TEST(SimMachine, BusyTimeExcludesIdle) {
  SimMachine m(2, fast_link());
  m.post(0, [&] { m.charge(0, 2.0); });
  m.post(1, [&] { m.charge(1, 0.5); });
  m.run();
  EXPECT_DOUBLE_EQ(m.busy_time(0), 2.0);
  EXPECT_DOUBLE_EQ(m.busy_time(1), 0.5);
}

TEST(SimMachine, RejectsBadPe) {
  SimMachine m(2);
  EXPECT_THROW(m.post(2, [] {}), support::LogicError);
  EXPECT_THROW(m.charge(-1, 1.0), support::LogicError);
  EXPECT_THROW((void)m.now(5), support::LogicError);
}

TEST(ThreadedMachine, RunsAllPostedActions) {
  ThreadedMachine m(4);
  std::atomic<int> count{0};
  m.task_started();
  for (int pe = 0; pe < 4; ++pe) {
    m.post(pe, [&] { count.fetch_add(1); });
  }
  m.post(0, [&] { m.task_finished(); });
  m.run();
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadedMachine, PePreservesFifoOrder) {
  ThreadedMachine m(1);
  std::vector<int> order;
  m.task_started();
  for (int i = 0; i < 100; ++i) {
    m.post(0, [&order, i] { order.push_back(i); });
  }
  m.post(0, [&] { m.task_finished(); });
  m.run();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadedMachine, TransmitDeliversToDestination) {
  ThreadedMachine m(2);
  std::atomic<bool> delivered{false};
  m.task_started();
  m.post(0, [&] {
    m.transmit(0, 1, 4096, [&] {
      delivered = true;
      m.task_finished();
    });
  });
  m.run();
  EXPECT_TRUE(delivered.load());
  EXPECT_EQ(m.transmitted_messages(), 1u);
  EXPECT_EQ(m.transmitted_bytes(), 4096u);
}

TEST(ThreadedMachine, ExceptionInActionPropagatesToRun) {
  ThreadedMachine m(2);
  m.task_started();
  m.post(1, [] { throw support::ConfigError("worker boom"); });
  EXPECT_THROW(m.run(), support::ConfigError);
}

TEST(ThreadedMachine, StallTimeoutDetectsDeadlock) {
  ThreadedMachine m(2);
  m.set_stall_timeout(0.1);
  m.task_started();  // a task that never finishes and never runs
  EXPECT_THROW(m.run(), support::DeadlockError);
}

// Regression: the stall detector only saw *completed* actions as progress,
// so one action running longer than the timeout (a long GEMM block, say)
// made run() throw a false DeadlockError.  An in-flight action is progress.
TEST(ThreadedMachine, LongRunningActionIsNotADeadlock) {
  ThreadedMachine m(2);
  m.set_stall_timeout(0.05);  // 50 ms
  std::atomic<bool> finished{false};
  m.task_started();
  m.post(0, [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    finished = true;
    m.task_finished();
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(finished.load());
}

// ...while a genuinely parked task still raises DeadlockError with the
// blocked report attached, even when unrelated PEs completed work earlier.
TEST(ThreadedMachine, GenuineStallStillDetectedWithReport) {
  ThreadedMachine m(2);
  m.set_stall_timeout(0.05);
  m.set_blocked_reporter([] { return std::string("PARKED-AGENT EP(1,2)"); });
  m.task_started();  // never finishes, nothing ever queued for it
  m.post(0, [] {});  // some real work that completes
  try {
    m.run();
    FAIL() << "expected DeadlockError";
  } catch (const support::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("PARKED-AGENT EP(1,2)"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 live task"), std::string::npos);
  }
}

// Regression: transmit statistics accumulated across run()s of a reused
// machine because nothing ever reset them.
TEST(ThreadedMachine, StatsResetBetweenRuns) {
  ThreadedMachine m(2);
  auto one_run = [&m] {
    m.task_started();
    m.post(0, [&m] {
      m.transmit(0, 1, 1000, [&m] { m.task_finished(); });
    });
    m.run();
  };
  one_run();
  EXPECT_EQ(m.transmitted_messages(), 1u);
  EXPECT_EQ(m.transmitted_bytes(), 1000u);
  one_run();
  EXPECT_EQ(m.transmitted_messages(), 1u) << "stats leaked across runs";
  EXPECT_EQ(m.transmitted_bytes(), 1000u);
}

TEST(ThreadedMachine, ReusedMachineRunsTwice) {
  ThreadedMachine m(3);
  for (int round = 0; round < 2; ++round) {
    std::atomic<int> count{0};
    m.task_started();
    for (int pe = 0; pe < 3; ++pe) {
      m.post(pe, [&] { count.fetch_add(1); });
    }
    m.post(2, [&] { m.task_finished(); });
    m.run();
    EXPECT_EQ(count.load(), 3) << "round " << round;
  }
}

TEST(SimMachine, ReusedMachineRunsTwice) {
  // SimMachine keeps its virtual clocks across runs (a second run continues
  // the same virtual timeline); both runs must execute all their actions.
  SimMachine m(2);
  int executed = 0;
  m.post(0, [&] { executed++; });
  m.post(1, [&] { executed++; });
  m.run();
  EXPECT_EQ(executed, 2);
  m.post(0, [&] { executed++; });
  m.run();
  EXPECT_EQ(executed, 3);
}

TEST(ThreadedMachine, RejectsBadPe) {
  ThreadedMachine m(2);
  EXPECT_THROW(m.post(7, [] {}), support::LogicError);
}

TEST(SimMachine, PostAfterRunsAtDeadline) {
  SimMachine m(2, fast_link());
  double fired_at = -1.0;
  m.post_after(0, 1.5, [&] { fired_at = m.now(0); });
  m.run();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
  EXPECT_DOUBLE_EQ(m.now(1), 0.0) << "timer must not advance other PEs";
}

TEST(SimMachine, PostAfterOrdersByDeadline) {
  SimMachine m(1, fast_link());
  std::vector<int> order;
  m.post_after(0, 2.0, [&] { order.push_back(2); });
  m.post_after(0, 1.0, [&] { order.push_back(1); });
  m.post_after(0, 3.0, [&] { order.push_back(3); });
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 3);
}

// A pending timer is progress: the stall watchdog must not fire while one
// is armed, even when the delay exceeds the stall timeout.
TEST(ThreadedMachine, PostAfterFiresAndIsNotAStall) {
  ThreadedMachine m(2);
  m.set_stall_timeout(0.05);
  std::atomic<bool> fired{false};
  m.task_started();
  m.post_after(1, 0.2, [&] {
    fired = true;
    m.task_finished();
  });
  EXPECT_NO_THROW(m.run());
  EXPECT_TRUE(fired.load());
}

// Regression: reset_stats() left the network model's NIC occupancy
// (out_free_/in_free_) at the previous run's values, so a reused SimMachine
// saw its first messages queue behind phantom transfers.  reset() rewinds
// clocks AND the network, so back-to-back runs are bit-identical.
TEST(SimMachine, ResetMakesRunsBitIdentical) {
  SimMachine m(2);  // default (non-zero) link params: occupancy matters
  auto one_run = [&m]() -> double {
    double delivered_at = -1.0;
    m.task_started();
    m.post(0, [&] {
      m.transmit(0, 1, 1 << 20, [&] {
        delivered_at = m.now(1);
        m.task_finished();
      });
    });
    m.run();
    return delivered_at;
  };
  const double first = one_run();
  m.reset();
  const double second = one_run();
  EXPECT_DOUBLE_EQ(second, first) << "stale NIC occupancy leaked into rerun";
  EXPECT_EQ(m.network().message_count(), 1u);
}

// --- reliability layer over an Engine -------------------------------------

// Drops every frame: retransmission can never succeed, so the retry budget
// must exhaust into a typed DeliveryError (never a silent hang), and the
// error text must carry the per-channel counters the blocked report uses.
struct BlackholeFaults final : net::FrameFaults {
  net::FrameFate decide_frame(int, int) override {
    net::FrameFate fate;
    fate.drop = true;
    return fate;
  }
  bool is_down(int) const override { return false; }
};

TEST(ReliableChannel, RetryExhaustionRaisesDeliveryErrorWithCounters) {
  SimMachine m(2, fast_link());
  BlackholeFaults faults;
  net::ReliableConfig cfg;
  cfg.max_retries = 3;
  net::ReliableChannel channel(m, &faults, cfg);
  m.task_started();
  bool delivered = false;
  channel.send(0, 1, 128, [&] { delivered = true; });
  try {
    m.run();
    FAIL() << "expected DeliveryError";
  } catch (const support::DeliveryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("0->1"), std::string::npos) << what;
    EXPECT_NE(what.find("unacked=1"), std::string::npos) << what;
    EXPECT_NE(what.find("retransmits=3"), std::string::npos) << what;
    EXPECT_NE(what.find("sent=1"), std::string::npos) << what;
  }
  EXPECT_FALSE(delivered);
  // The exhausted payload is retired from the retain buffer (the error
  // report above captured the counters first).
  EXPECT_EQ(channel.total_unacked(), 0u);
  EXPECT_EQ(channel.stats(0, 1).retransmits, 3u);
}

TEST(ReliableChannel, RtoBackoffIsCappedByRtoMax) {
  SimMachine m(2, fast_link());
  BlackholeFaults faults;
  net::ReliableConfig cfg;
  cfg.rto_initial = 1e-3;
  cfg.rto_backoff = 10.0;
  cfg.rto_max = 2e-3;
  cfg.rto_jitter = 0.0;
  cfg.max_retries = 4;
  net::ReliableChannel channel(m, &faults, cfg);
  m.task_started();
  channel.send(0, 1, 64, [] {});
  EXPECT_THROW(m.run(), support::DeliveryError);
  // Retransmits land at 1, 3, 5, 7 ms (virtual): every interval after the
  // first is clamped to rto_max.  Uncapped 10x backoff would put the last
  // retry past a virtual second — the unbounded-wait bug this cap fixes.
  EXPECT_EQ(channel.stats(0, 1).retransmits, 4u);
  EXPECT_LT(m.finish_time(), 0.02);
  m.task_finished();
}

TEST(ReliableChannel, RejectsRtoMaxBelowInitial) {
  SimMachine m(2, fast_link());
  net::ReliableConfig cfg;
  cfg.rto_initial = 1.0;
  cfg.rto_max = 0.5;
  EXPECT_THROW(net::ReliableChannel(m, nullptr, cfg), support::LogicError);
}

// --- stats freshness across runs -------------------------------------------
// A reused machine must start every run with a clean slate: a stale
// reporter, counter, or log from the previous run corrupts the next run's
// diagnostics (and in the reporter's case dangles into a dead Runtime).

TEST(SimMachine, ResetDropsBlockedReporter) {
  SimMachine m(1);
  m.task_started();
  m.set_blocked_reporter([] { return std::string("STALE-RUN-ONE"); });
  EXPECT_THROW(m.run(), support::DeadlockError);
  m.task_finished();  // retire the stalled task so reset() accepts the machine
  m.reset();
  m.task_started();
  try {
    m.run();
    FAIL() << "expected DeadlockError";
  } catch (const support::DeadlockError& e) {
    EXPECT_EQ(std::string(e.what()).find("STALE-RUN-ONE"), std::string::npos)
        << "reset must drop the previous run's blocked reporter";
  }
}

TEST(ChaosMachine, ResetTraceRewindsCounters) {
  SimMachine sim(2);
  ChaosConfig cfg;
  cfg.seed = 7;
  ChaosMachine chaos(sim, cfg);
  for (int i = 0; i < 8; ++i) chaos.post(i % 2, [] {});
  chaos.transmit(0, 1, 64, [] {});
  chaos.run();
  EXPECT_GT(chaos.decisions(), 0u);
  EXPECT_FALSE(chaos.trace_summary().empty());

  chaos.reset_trace(8);
  EXPECT_EQ(chaos.decisions(), 0u);
  EXPECT_EQ(chaos.perturbations(), 0u);
  EXPECT_TRUE(chaos.trace_summary().empty())
      << "a fresh seed must not inherit the previous run's decision log";
}

TEST(FaultMachine, ResetTraceRewindsCounters) {
  SimMachine sim(2);
  FaultPlan plan;
  plan.seed = 5;
  plan.drop_prob = 1.0;
  plan.duplicate_prob = 1.0;
  plan.corrupt_prob = 1.0;
  FaultMachine fault(sim, plan);
  for (int i = 0; i < 4; ++i) fault.decide_frame(0, 1);
  EXPECT_EQ(fault.frames_dropped(), 4u);
  EXPECT_EQ(fault.frames_duplicated(), 4u);
  EXPECT_EQ(fault.frames_corrupted(), 4u);

  fault.reset_trace(6);
  EXPECT_EQ(fault.frames_dropped(), 0u);
  EXPECT_EQ(fault.frames_duplicated(), 0u);
  EXPECT_EQ(fault.frames_corrupted(), 0u);
  EXPECT_EQ(fault.messages_limboed(), 0u);
  EXPECT_EQ(fault.crashes_fired(), 0u);
  EXPECT_NE(fault.trace_summary().find("dropped=0"), std::string::npos);
}

// --- metrics ---------------------------------------------------------------

TEST(SimMachine, MetricsMirrorNetworkModelExactly) {
  obs::Registry registry;
  SimMachine m(2, fast_link());
  m.set_metrics(&registry);
  m.task_started();
  m.post(0, [&] {
    m.charge(0, 1e-3);
    m.transmit(0, 1, 1000, [&] { m.task_finished(); });
  });
  m.run();
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("net.messages"), m.network().message_count());
  EXPECT_EQ(snap.counter_or("net.bytes"), m.network().byte_count());
  EXPECT_EQ(snap.counter_or("net.bytes"), 1000u);
  EXPECT_GT(snap.counter_or("sim.actions{pe=0}"), 0u);
  EXPECT_GT(snap.counter_or("sim.actions{pe=1}"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("sim.virtual_time"), m.finish_time());
}

TEST(ChaosMachine, MetricsMirrorDecisionCounters) {
  obs::Registry registry;
  SimMachine sim(2);
  ChaosConfig cfg;
  cfg.seed = 3;
  ChaosMachine chaos(sim, cfg);
  chaos.set_metrics(&registry);
  for (int i = 0; i < 16; ++i) chaos.post(i % 2, [] {});
  chaos.run();
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("chaos.decisions"), chaos.decisions());
  EXPECT_EQ(snap.counter_or("chaos.perturbations"), chaos.perturbations());
}

TEST(ThreadedMachine, MetricsCountActionsPerPe) {
  obs::Registry registry;
  ThreadedMachine m(2);
  m.set_metrics(&registry);
  std::atomic<int> ran{0};
  m.task_started();
  for (int i = 0; i < 10; ++i) {
    m.post(i % 2, [&] {
      if (ran.fetch_add(1) + 1 == 10) m.task_finished();
    });
  }
  m.run();
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter_or("threaded.actions{pe=0}") +
                snap.counter_or("threaded.actions{pe=1}"),
            static_cast<std::uint64_t>(ran.load()));
  // Queue depth is sampled by the consumer once per drained batch, so the
  // sample count is between 1 (everything arrived in one batch) and the
  // number of actions (every action drained alone).
  const std::uint64_t depth_samples =
      snap.counter_or("threaded.queue_depth/count");
  EXPECT_GE(depth_samples, 1u);
  EXPECT_LE(depth_samples, static_cast<std::uint64_t>(ran.load()));
}

// Regression test: the old producer-side depth sampling could read the
// dequeue tally *after* a racing consumer advanced it past this producer's
// enqueue tally, recording a negative queue depth.  Consumer-side sampling
// clamps at zero, so under heavy producer/consumer concurrency the
// histogram sum (sum of all recorded depths) can never go negative.
TEST(ThreadedMachine, QueueDepthSamplesNeverGoNegative) {
  obs::Registry registry;
  ThreadedMachine m(2);
  m.set_metrics(&registry);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::atomic<int> ran{0};
  m.task_started();
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&m, &ran, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        m.post((t + i) % 2, [&m, &ran] {
          if (ran.fetch_add(1) + 1 == kProducers * kPerProducer) {
            m.task_finished();
          }
        });
      }
    });
  }
  // Consume concurrently with the producers: this is the interleaving that
  // used to produce negative samples.
  m.run();
  for (auto& p : producers) p.join();
  const obs::Snapshot snap = registry.snapshot();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
  auto it = snap.gauges.find("threaded.queue_depth/sum");
  ASSERT_NE(it, snap.gauges.end());
  EXPECT_GE(it->second, 0.0);
}

}  // namespace
}  // namespace navcpp::machine
