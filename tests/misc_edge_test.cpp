// Edge cases that don't fit the per-module suites: logging, node stores,
// mini-MPI misuse, and machine reuse.
#include <gtest/gtest.h>

#include <memory>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "minimpi/world.h"
#include "navp/node_store.h"
#include "navp/runtime.h"
#include "support/log.h"

namespace navcpp {
namespace {

TEST(Log, LevelFilteringIsMonotone) {
  const auto saved = support::log_level();
  support::set_log_level(support::LogLevel::kError);
  EXPECT_EQ(support::log_level(), support::LogLevel::kError);
  support::set_log_level(support::LogLevel::kDebug);
  EXPECT_EQ(support::log_level(), support::LogLevel::kDebug);
  // Emitting at every level must not crash regardless of threshold.
  support::log_debug("debug ", 1);
  support::log_info("info ", 2.5);
  support::log_warn("warn ", "x");
  support::log_error("error ", 'c');
  support::set_log_level(saved);
}

TEST(NodeStore, DuplicateEmplaceThrows) {
  navp::NodeStore store;
  store.emplace<int>(3);
  EXPECT_THROW(store.emplace<int>(4), support::LogicError);
  EXPECT_EQ(store.get<int>(), 3);
}

TEST(NodeStore, HasReflectsInstallation) {
  navp::NodeStore store;
  EXPECT_FALSE(store.has<double>());
  store.emplace<double>(1.5);
  EXPECT_TRUE(store.has<double>());
  EXPECT_FALSE(store.has<int>());
}

TEST(NodeStore, DistinctTypesCoexist) {
  navp::NodeStore store;
  struct A { int x = 1; };
  struct B { int x = 2; };
  store.emplace<A>();
  store.emplace<B>();
  EXPECT_EQ(store.get<A>().x, 1);
  EXPECT_EQ(store.get<B>().x, 2);
}

TEST(MiniMpiMisuse, WaitingTwiceOnARequestThrows) {
  machine::SimMachine m(2);
  navp::Runtime rt(m);
  minimpi::World world(rt);
  world.launch([](minimpi::Comm comm) -> navp::Mission {
    if (comm.rank() == 0) {
      comm.send(1, 1, {1.0});
      comm.send(1, 1, {2.0});
    } else {
      minimpi::Request req = comm.irecv(0, 1);
      (void)co_await comm.wait(req);
      req.completed = true;  // simulate user double-wait bookkeeping
      (void)co_await comm.wait(req);
    }
  });
  EXPECT_THROW(rt.run(), support::LogicError);
}

TEST(MiniMpiMisuse, WaitOnDefaultRequestThrows) {
  machine::SimMachine m(1);
  navp::Runtime rt(m);
  minimpi::World world(rt);
  world.launch([](minimpi::Comm comm) -> navp::Mission {
    minimpi::Request req;
    (void)co_await comm.wait(req);
  });
  EXPECT_THROW(rt.run(), support::LogicError);
}

TEST(MachineReuse, SimMachineClocksPersistAcrossRuns) {
  // A second batch of work on the same machine continues in virtual time
  // (documented: callers wanting t=0 build a fresh machine).
  machine::SimMachine m(2);
  navp::Runtime rt(m);
  rt.inject(0, "a", [](navp::Ctx ctx) -> navp::Mission {
    ctx.compute(1.0, "x");
    co_return;
  });
  rt.run();
  EXPECT_DOUBLE_EQ(m.finish_time(), 1.0);
  rt.inject(0, "b", [](navp::Ctx ctx) -> navp::Mission {
    ctx.compute(0.5, "y");
    co_return;
  });
  rt.run();
  EXPECT_DOUBLE_EQ(m.finish_time(), 1.5);
}

TEST(MachineReuse, ThreadedMachineRunsTwice) {
  machine::ThreadedMachine m(2);
  m.set_stall_timeout(5.0);
  navp::Runtime rt(m);
  int hits = 0;
  for (int round = 0; round < 2; ++round) {
    rt.inject(round % 2, "r", [](navp::Ctx ctx, int* out) -> navp::Mission {
      co_await ctx.hop((ctx.here() + 1) % ctx.pe_count(), 8);
      ++*out;
    }, &hits);
    rt.run();
  }
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(rt.agents_completed(), 2u);
}

TEST(Engine, FinishTimeIsMaxOverPes) {
  machine::SimMachine m(3);
  m.charge(0, 1.0);
  m.charge(1, 5.0);
  m.charge(2, 3.0);
  EXPECT_DOUBLE_EQ(m.finish_time(), 5.0);
}

}  // namespace
}  // namespace navcpp
