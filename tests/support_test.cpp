// Unit tests for navcpp::support: errors, byte buffers, RNG, queues.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "support/bytebuffer.h"
#include "support/error.h"
#include "support/fast_mpsc_queue.h"
#include "support/move_function.h"
#include "support/mpsc_queue.h"
#include "support/rng.h"

namespace navcpp::support {
namespace {

TEST(Error, CheckMacroThrowsLogicErrorWithContext) {
  try {
    NAVCPP_CHECK(1 == 2, "one is not two");
    FAIL() << "NAVCPP_CHECK did not throw";
  } catch (const LogicError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("support_test.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw DeadlockError("stall"), Error);
  EXPECT_THROW(throw ConfigError("bad"), Error);
  EXPECT_THROW(throw LogicError("bug"), Error);
}

TEST(ByteBuffer, RoundTripsScalars) {
  ByteBuffer buf;
  buf.put<int>(42);
  buf.put<double>(3.5);
  buf.put<char>('x');
  EXPECT_EQ(buf.size(), sizeof(int) + sizeof(double) + sizeof(char));
  EXPECT_EQ(buf.get<int>(), 42);
  EXPECT_EQ(buf.get<double>(), 3.5);
  EXPECT_EQ(buf.get<char>(), 'x');
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(ByteBuffer, RoundTripsVectors) {
  ByteBuffer buf;
  std::vector<double> v{1.0, 2.0, 3.0, 4.5};
  buf.put_vector(v);
  buf.put<int>(7);
  EXPECT_EQ(buf.get_vector<double>(), v);
  EXPECT_EQ(buf.get<int>(), 7);
}

TEST(ByteBuffer, UnderflowThrows) {
  ByteBuffer buf;
  buf.put<int>(1);
  (void)buf.get<int>();
  EXPECT_THROW((void)buf.get<int>(), LogicError);
}

TEST(ByteBuffer, VectorUnderflowThrows) {
  ByteBuffer buf;
  buf.put<std::uint64_t>(1000);  // length prefix with no payload behind it
  EXPECT_THROW((void)buf.get_vector<double>(), LogicError);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(MoveFunction, InvokesMoveOnlyCallable) {
  auto ptr = std::make_unique<int>(5);
  int result = 0;
  MoveFunction fn = [p = std::move(ptr), &result] { result = *p; };
  fn();
  EXPECT_EQ(result, 5);
}

TEST(MoveFunction, BoolConversion) {
  MoveFunction empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  MoveFunction full = [] {};
  EXPECT_TRUE(static_cast<bool>(full));
}

TEST(MpscQueue, FifoOrderSingleThread) {
  MpscQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.try_pop(), std::optional<int>(i));
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(MpscQueue, CloseUnblocksConsumer) {
  MpscQueue<int> q;
  std::thread consumer([&] {
    EXPECT_EQ(q.pop_blocking(), std::optional<int>(1));
    EXPECT_EQ(q.pop_blocking(), std::nullopt);  // closed + empty
  });
  EXPECT_TRUE(q.push(1));
  q.close();
  consumer.join();
}

// Regression: push() used to silently enqueue into a closed queue — the
// item was destroyed by the drain without ever running and the poster got
// no signal.  A closed queue now rejects the push and reports it.
TEST(MpscQueue, PushOnClosedQueueIsRejected) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));
  // The rejected item never entered the queue: only 1 drains out.
  EXPECT_EQ(q.pop_blocking(), std::optional<int>(1));
  EXPECT_EQ(q.pop_blocking(), std::nullopt);
  EXPECT_TRUE(q.empty());
}

TEST(MpscQueue, PushOnClosedQueueDropsTheItem) {
  // The dropped item's destructor runs at the push site (this is what
  // releases captured coroutine frames when a machine is shutting down).
  struct Tracker {
    int* dropped;
    explicit Tracker(int* d) : dropped(d) {}
    Tracker(Tracker&& o) noexcept : dropped(o.dropped) { o.dropped = nullptr; }
    ~Tracker() {
      if (dropped != nullptr) ++*dropped;
    }
  };
  int dropped = 0;
  {
    MpscQueue<Tracker> q;
    q.close();
    EXPECT_FALSE(q.push(Tracker(&dropped)));
    EXPECT_EQ(dropped, 1);
  }
  EXPECT_EQ(dropped, 1);
}

TEST(MpscQueue, ReopenAcceptsPushesAgain) {
  MpscQueue<int> q;
  q.close();
  EXPECT_FALSE(q.push(1));
  q.reopen();
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.try_pop(), std::optional<int>(2));
}

TEST(MpscQueue, MultipleProducersAllItemsArrive) {
  MpscQueue<int> q;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::set<int> seen;
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    auto v = q.pop_blocking();
    ASSERT_TRUE(v.has_value());
    seen.insert(*v);
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(4 * kPerProducer));
}

TEST(MpscQueue, PopAllDrainsEverythingInFifoOrder) {
  MpscQueue<int> q;
  std::vector<int> out;
  EXPECT_FALSE(q.pop_all(out));  // empty: nothing popped
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_TRUE(q.pop_all(out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
  // Appends rather than replaces, so a consumer can accumulate batches.
  EXPECT_TRUE(q.push(9));
  EXPECT_TRUE(q.pop_all(out));
  EXPECT_EQ(out.back(), 9);
  EXPECT_EQ(out.size(), 6u);
}

TEST(MpscQueue, PopAllDrainsAfterClose) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected
  std::vector<int> out;
  EXPECT_TRUE(q.pop_all(out));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));  // queued items still drain
}

// Close/reopen raced against concurrent producers: every push must either
// report success (the item is later popped exactly once) or rejection (the
// item never appears) — no silent drops, no duplicates, no torn state.
TEST(MpscQueue, CloseReopenUnderConcurrentProducers) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.push(p * kPerProducer + i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<int> drained;
  for (int cycle = 0; cycle < 50; ++cycle) {
    q.close();
    q.pop_all(drained);
    q.reopen();
  }
  for (auto& t : producers) t.join();
  q.close();
  q.pop_all(drained);
  EXPECT_EQ(static_cast<int>(drained.size()), accepted.load());
  std::set<int> unique(drained.begin(), drained.end());
  EXPECT_EQ(unique.size(), drained.size());  // no duplicates
}

// ---- FastMpscQueue: the lock-free run queue behind ThreadedMachine ----

TEST(FastMpscQueue, PopAllReturnsItemsInPushOrder) {
  FastMpscQueue<int> q;
  std::vector<int> out;
  EXPECT_FALSE(q.pop_all(out));
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_FALSE(q.empty());
  EXPECT_TRUE(q.pop_all(out));
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_TRUE(q.empty());
}

TEST(FastMpscQueue, PushOnClosedQueueIsRejectedAndDropsTheItem) {
  struct Tracker {
    int* dropped;
    explicit Tracker(int* d) : dropped(d) {}
    Tracker(Tracker&& o) noexcept : dropped(o.dropped) { o.dropped = nullptr; }
    Tracker& operator=(Tracker&& o) noexcept {
      dropped = o.dropped;
      o.dropped = nullptr;
      return *this;
    }
    ~Tracker() {
      if (dropped != nullptr) ++*dropped;
    }
  };
  int dropped = 0;
  {
    FastMpscQueue<Tracker> q;
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(Tracker(&dropped)));
    EXPECT_EQ(dropped, 1);  // destroyed at the push site
  }
  EXPECT_EQ(dropped, 1);
}

TEST(FastMpscQueue, DrainAfterCloseKeepsQueuedItems) {
  FastMpscQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_FALSE(q.empty());  // retained items are still visible
  std::vector<int> out;
  EXPECT_TRUE(q.pop_all(out));
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.empty());
}

TEST(FastMpscQueue, ReopenAcceptsPushesAgainAndKeepsFifoAcrossCycles) {
  FastMpscQueue<int> q;
  EXPECT_TRUE(q.push(1));
  q.close();
  EXPECT_FALSE(q.push(2));
  q.reopen();
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.push(3));
  // Item 1 (pre-close leftover) must drain before item 3.
  std::vector<int> out;
  EXPECT_TRUE(q.pop_all(out));
  EXPECT_EQ(out, (std::vector<int>{1, 3}));
}

TEST(FastMpscQueue, MultipleProducersAllItemsArriveExactlyOnce) {
  FastMpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> drained;
  while (drained.size() <
         static_cast<std::size_t>(kProducers * kPerProducer)) {
    q.pop_all(drained);
  }
  for (auto& t : producers) t.join();
  std::set<int> unique(drained.begin(), drained.end());
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  // Per-producer order is preserved: a single producer's items come out in
  // the order it pushed them (the head CAS linearizes every push).
  std::vector<int> last(kProducers, -1);
  for (int v : drained) {
    const int p = v / kPerProducer;
    EXPECT_LT(last[static_cast<std::size_t>(p)], v);
    last[static_cast<std::size_t>(p)] = v;
  }
}

TEST(FastMpscQueue, CloseReopenUnderConcurrentProducers) {
  FastMpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, &accepted, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (q.push(p * kPerProducer + i)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<int> drained;
  for (int cycle = 0; cycle < 50; ++cycle) {
    q.close();
    q.pop_all(drained);
    q.reopen();
  }
  for (auto& t : producers) t.join();
  q.close();
  q.pop_all(drained);
  EXPECT_EQ(static_cast<int>(drained.size()), accepted.load());
  std::set<int> unique(drained.begin(), drained.end());
  EXPECT_EQ(unique.size(), drained.size());
}

TEST(FastMpscQueue, DestructorReleasesUnpoppedItems) {
  auto counter = std::make_shared<int>(0);
  {
    FastMpscQueue<std::shared_ptr<int>> q;
    for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(counter));
    EXPECT_EQ(counter.use_count(), 9);
  }
  EXPECT_EQ(counter.use_count(), 1);  // queue destructor drained them
}

// ---- MoveFunction small-buffer optimization ----

TEST(MoveFunction, InlineCallablesSurviveMovesWithoutAllocation) {
  int hits = 0;
  int* target = &hits;
  MoveFunction f = [target] { ++*target; };
  MoveFunction g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(g));
  g();
  MoveFunction h;
  h = std::move(g);
  h();
  EXPECT_EQ(hits, 2);
}

TEST(MoveFunction, LargeCallablesFallBackToHeapAndStillWork) {
  struct Big {
    double payload[32];  // well past kInlineSize
  };
  Big big{};
  big.payload[0] = 1.0;
  big.payload[31] = 2.0;
  double got = 0.0;
  double* out = &got;
  MoveFunction f = [big, out] { *out = big.payload[0] + big.payload[31]; };
  MoveFunction g = std::move(f);
  g();
  EXPECT_EQ(got, 3.0);
}

TEST(MoveFunction, DestroysCapturesExactlyOnceAcrossMoves) {
  auto counter = std::make_shared<int>(0);
  {
    MoveFunction f = [counter] {};
    EXPECT_EQ(counter.use_count(), 2);
    MoveFunction g = std::move(f);
    EXPECT_EQ(counter.use_count(), 2);  // moved, not copied
    MoveFunction h = std::move(g);
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

}  // namespace
}  // namespace navcpp::support
