// Tests for the NavP runtime: hop/inject/events/node variables/tracing,
// on both the simulated and the threaded backends.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "support/error.h"

namespace navcpp::navp {
namespace {

constexpr EventKey kGo{1, 0, 0};

struct Counter {
  int visits = 0;
  std::vector<std::uint64_t> visitors;
};

// --- agents used across tests -------------------------------------------

Mission tourist(Ctx ctx, int laps) {
  for (int lap = 0; lap < laps; ++lap) {
    for (int pe = 0; pe < ctx.pe_count(); ++pe) {
      co_await ctx.hop(pe, /*payload=*/64);
      auto& c = ctx.node<Counter>();
      ++c.visits;
      c.visitors.push_back(ctx.id());
    }
  }
}

Mission waiter_agent(Ctx ctx, EventKey key, int* resumed_order, int my_rank) {
  co_await ctx.wait_event(key);
  resumed_order[my_rank] = 1;
}

Mission signaler_agent(Ctx ctx, EventKey key, int times) {
  for (int i = 0; i < times; ++i) ctx.signal_event(key);
  co_return;
}

// Fixture running each test body against both backends.
class NavpBothBackends : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<machine::Engine> make_machine(int pes) {
    if (GetParam() == "sim") {
      return std::make_unique<machine::SimMachine>(pes);
    }
    auto m = std::make_unique<machine::ThreadedMachine>(pes);
    m->set_stall_timeout(5.0);
    return m;
  }
};

TEST_P(NavpBothBackends, AgentVisitsEveryPe) {
  auto m = make_machine(4);
  Runtime rt(*m);
  for (int pe = 0; pe < 4; ++pe) rt.node_store(pe).emplace<Counter>();
  rt.inject(0, "tourist", tourist, 3);
  rt.run();
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(rt.node_store(pe).get<Counter>().visits, 3);
  }
  EXPECT_EQ(rt.agents_injected(), 1u);
  EXPECT_EQ(rt.agents_completed(), 1u);
  EXPECT_EQ(rt.hop_count(), 12u);
}

TEST_P(NavpBothBackends, ManyAgentsAllComplete) {
  auto m = make_machine(3);
  Runtime rt(*m);
  for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<Counter>();
  for (int i = 0; i < 20; ++i) {
    rt.inject(i % 3, "tourist" + std::to_string(i), tourist, 2);
  }
  rt.run();
  int total = 0;
  for (int pe = 0; pe < 3; ++pe) {
    total += rt.node_store(pe).get<Counter>().visits;
  }
  EXPECT_EQ(total, 20 * 2 * 3);
  EXPECT_EQ(rt.agents_completed(), 20u);
}

TEST_P(NavpBothBackends, EventWaitBlocksUntilSignal) {
  auto m = make_machine(1);
  Runtime rt(*m);
  int order[1] = {0};
  rt.inject(0, "waiter", waiter_agent, kGo, order, 0);
  rt.inject(0, "signaler", signaler_agent, kGo, 1);
  rt.run();
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(rt.signals_sent(), 1u);
  EXPECT_EQ(rt.waits_satisfied(), 1u);
  EXPECT_EQ(rt.unconsumed_signals(), 0u);
}

TEST_P(NavpBothBackends, BankedSignalIsConsumedWithoutBlocking) {
  auto m = make_machine(1);
  Runtime rt(*m);
  int order[1] = {0};
  rt.pre_signal(0, kGo);
  rt.inject(0, "waiter", waiter_agent, kGo, order, 0);
  rt.run();
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(rt.unconsumed_signals(), 0u);
}

TEST_P(NavpBothBackends, OneSignalWakesExactlyOneWaiter) {
  auto m = make_machine(1);
  Runtime rt(*m);
  int order[3] = {0, 0, 0};
  rt.inject(0, "w0", waiter_agent, kGo, order, 0);
  rt.inject(0, "w1", waiter_agent, kGo, order, 1);
  rt.inject(0, "w2", waiter_agent, kGo, order, 2);
  rt.inject(0, "sig", signaler_agent, kGo, 3);
  rt.run();
  EXPECT_EQ(order[0] + order[1] + order[2], 3);
  EXPECT_EQ(rt.unconsumed_signals(), 0u);
}

Mission ordered_waiter(Ctx ctx, EventKey key, std::vector<int>* order,
                       int rank) {
  co_await ctx.wait_event(key);
  order->push_back(rank);  // PE-confined: only this PE's agents touch it
}

// EventTable fairness: when several agents park on one key, signals wake
// them strictly oldest-first on both backends.  The chaos runner leans on
// this — wake order must be a function of park order, not of scheduling.
TEST_P(NavpBothBackends, EventWakeupOrderIsFifoAmongWaiters) {
  auto m = make_machine(1);
  Runtime rt(*m);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    rt.inject(0, "w" + std::to_string(i), ordered_waiter, kGo, &order, i);
  }
  rt.inject(0, "sig", signaler_agent, kGo, 4);
  rt.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(rt.unconsumed_signals(), 0u);
}

// Unit-level FIFO check on the table itself, including interleaved banked
// signals (consume must prefer banked counts; waiters pop oldest-first).
TEST(EventTable, SignalHandsOldestWaiterFirst) {
  EventTable table;
  const EventKey key{9, 3, 4};
  AgentState a0, a1, a2;
  table.add_waiter(key, EventWaiter{std::noop_coroutine(), &a0});
  table.add_waiter(key, EventWaiter{std::noop_coroutine(), &a1});
  table.add_waiter(key, EventWaiter{std::noop_coroutine(), &a2});
  EXPECT_EQ(table.waiter_count(key), 3u);
  EXPECT_EQ(table.signal(key).agent, &a0);
  EXPECT_EQ(table.signal(key).agent, &a1);
  EXPECT_EQ(table.signal(key).agent, &a2);
  // No waiters left: the next signal banks a count instead.
  EXPECT_EQ(table.signal(key).agent, nullptr);
  EXPECT_EQ(table.pending_signals(key), 1u);
  EXPECT_TRUE(table.try_consume(key));
  EXPECT_FALSE(table.try_consume(key));
}

// The blocked report lists parked agents in deterministic (tag, a, b) key
// order regardless of signal/park ordering or hash-map layout.
TEST(EventTable, ForEachWaiterVisitsKeysInSortedOrder) {
  EventTable table;
  AgentState agent;
  table.add_waiter(EventKey{2, 0, 0},
                   EventWaiter{std::noop_coroutine(), &agent});
  table.add_waiter(EventKey{1, 5, 0},
                   EventWaiter{std::noop_coroutine(), &agent});
  table.add_waiter(EventKey{1, 2, 9},
                   EventWaiter{std::noop_coroutine(), &agent});
  std::vector<std::string> seen;
  table.for_each_waiter(
      [&](const EventKey& key, const EventWaiter&) { seen.push_back(key.str()); });
  EXPECT_EQ(seen, (std::vector<std::string>{"E1(2,9)", "E1(5,0)", "E2(0,0)"}));
}

TEST_P(NavpBothBackends, SignalConservation) {
  // Signals sent but never awaited stay banked: signals == waits + banked.
  auto m = make_machine(2);
  Runtime rt(*m);
  rt.inject(0, "sig", signaler_agent, kGo, 5);
  int order[1] = {0};
  rt.inject(0, "waiter", waiter_agent, kGo, order, 0);
  rt.run();
  EXPECT_EQ(rt.signals_sent(), 5u);
  EXPECT_EQ(rt.waits_satisfied(), 1u);
  EXPECT_EQ(rt.unconsumed_signals(), 4u);
}

Mission spawner_agent(Ctx ctx, int n) {
  // Local injection: children start on the spawner's current PE.
  for (int i = 0; i < n; ++i) {
    ctx.inject("child" + std::to_string(i), tourist, 1);
  }
  co_return;
}

TEST_P(NavpBothBackends, AgentsCanInjectAgentsLocally) {
  auto m = make_machine(3);
  Runtime rt(*m);
  for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<Counter>();
  rt.inject(1, "spawner", spawner_agent, 4);
  rt.run();
  EXPECT_EQ(rt.agents_injected(), 5u);
  EXPECT_EQ(rt.agents_completed(), 5u);
  int total = 0;
  for (int pe = 0; pe < 3; ++pe)
    total += rt.node_store(pe).get<Counter>().visits;
  EXPECT_EQ(total, 4 * 3);
}

Mission bad_hopper(Ctx ctx) {
  co_await ctx.hop(999);
}

TEST_P(NavpBothBackends, HopToInvalidPeFailsTheRun) {
  auto m = make_machine(2);
  Runtime rt(*m);
  rt.inject(0, "bad", bad_hopper);
  EXPECT_THROW(rt.run(), support::LogicError);
}

Mission forever_waiter(Ctx ctx) {
  co_await ctx.wait_event(EventKey{42, 1, 2});
}

TEST_P(NavpBothBackends, DeadlockIsDetectedAndNamed) {
  auto m = make_machine(2);
  if (GetParam() == "threaded") {
    static_cast<machine::ThreadedMachine*>(m.get())->set_stall_timeout(0.2);
  }
  Runtime rt(*m);
  rt.inject(1, "stuck-agent", forever_waiter);
  try {
    rt.run();
    FAIL() << "expected DeadlockError";
  } catch (const support::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck-agent"), std::string::npos);
    EXPECT_NE(what.find("E42(1,2)"), std::string::npos);
    EXPECT_NE(what.find("PE 1"), std::string::npos);
  }
}

Mission thrower(Ctx ctx) {
  co_await ctx.hop(1);
  throw support::ConfigError("agent exploded");
}

TEST_P(NavpBothBackends, AgentExceptionPropagatesToRun) {
  auto m = make_machine(2);
  Runtime rt(*m);
  rt.inject(0, "thrower", thrower);
  EXPECT_THROW(rt.run(), support::ConfigError);
}

TEST_P(NavpBothBackends, MissingNodeVariableThrows) {
  auto m = make_machine(2);
  Runtime rt(*m);
  // No Counter installed on PE 1.
  rt.node_store(0).emplace<Counter>();
  rt.inject(0, "tourist", tourist, 1);
  EXPECT_THROW(rt.run(), support::LogicError);
}

INSTANTIATE_TEST_SUITE_P(Backends, NavpBothBackends,
                         ::testing::Values(std::string("sim"),
                                           std::string("threaded")),
                         [](const auto& info) { return info.param; });

// --- simulation-only semantics ------------------------------------------

Mission charger(Ctx ctx, double seconds) {
  ctx.compute(seconds, "charge");
  co_return;
}

TEST(NavpSim, ComputeAdvancesVirtualTime) {
  machine::SimMachine m(2);
  Runtime rt(m);
  rt.inject(0, "c0", charger, 2.0);
  rt.inject(1, "c1", charger, 3.5);
  rt.run();
  EXPECT_DOUBLE_EQ(m.now(0), 2.0);
  EXPECT_GE(m.now(1), 3.5);
  EXPECT_DOUBLE_EQ(m.finish_time(), 3.5);
}

Mission ping(Ctx ctx, int laps) {
  for (int i = 0; i < laps; ++i) {
    co_await ctx.hop(1, 1024);
    co_await ctx.hop(0, 1024);
  }
}

TEST(NavpSim, HopCostIncludesPayloadAndState) {
  net::LinkParams p;
  p.send_overhead = 0.0;
  p.recv_overhead = 0.0;
  p.latency = 0.5;
  p.bandwidth = 1e9;
  machine::SimMachine m(2, p);
  Runtime rt(m);
  rt.set_hop_state_bytes(0);
  rt.inject(0, "ping", ping, 3);
  rt.run();
  // 6 hops, each dominated by latency 0.5 (payload transfer ~1 microsecond).
  EXPECT_NEAR(m.finish_time(), 3.0, 0.01);
  EXPECT_EQ(rt.hop_count(), 6u);
  EXPECT_EQ(m.network().message_count(), 6u);
  // Each hop carries 1024 payload bytes (+0 state bytes).
  EXPECT_EQ(m.network().byte_count(), 6u * 1024u);
}

TEST(NavpSim, DeterministicVirtualTimes) {
  auto run_once = [] {
    machine::SimMachine m(3);
    Runtime rt(m);
    for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<Counter>();
    for (int i = 0; i < 5; ++i) rt.inject(i % 3, "t", tourist, 2);
    rt.run();
    return m.finish_time();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(NavpSim, TraceRecordsHopsAndSpans) {
  machine::SimMachine m(3);
  Runtime rt(m);
  TraceRecorder trace;
  rt.set_trace(&trace);
  for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<Counter>();
  rt.inject(0, "tourist", tourist, 1);
  rt.inject(0, "sig", signaler_agent, kGo, 1);
  rt.run();
  // One lap over 3 PEs from PE 0: hop(0) is a same-node no-op (MESSENGERS
  // semantics), so only the two migrations appear in the trace.
  EXPECT_EQ(trace.hops().size(), 2u);
  for (const auto& h : trace.hops()) {
    EXPECT_LE(h.depart, h.arrive);
  }
  const std::string diagram = trace.render_spacetime(3, 10);
  EXPECT_NE(diagram.find("PE"), std::string::npos);
}

TEST(NavpSim, InjectRejectsBadPe) {
  machine::SimMachine m(2);
  Runtime rt(m);
  EXPECT_THROW(rt.inject(5, "x", charger, 1.0), support::LogicError);
}

// --- hop-size audit ------------------------------------------------------

// 8 KB of frame-resident state, used on both sides of the hop so it must
// live in the coroutine frame — but the hop declares only 8 payload bytes.
Mission frame_hoarder(Ctx ctx) {
  double big[1024] = {0.0};
  big[0] = 1.0;
  co_await ctx.hop(1, sizeof(double));
  double sum = 0.0;
  for (double v : big) sum += v;
  ctx.node<Counter>().visits += static_cast<int>(sum);
}

// The honest twin: it declares what it keeps.
Mission frame_declarer(Ctx ctx) {
  double big[1024] = {0.0};
  big[0] = 1.0;
  co_await ctx.hop(1, sizeof(big));
  double sum = 0.0;
  for (double v : big) sum += v;
  ctx.node<Counter>().visits += static_cast<int>(sum);
}

TEST(HopAudit, FlagsHopDeclaringLessThanItsFrame) {
  machine::SimMachine m(2);
  Runtime rt(m);
  rt.node_store(1).emplace<Counter>();
  rt.inject(0, "hoarder", frame_hoarder);
  rt.run();
  EXPECT_GE(rt.hop_audit_flags(), 1u);
  const auto report = rt.hop_audit_report();
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report[0].find("hoarder"), std::string::npos) << report[0];
  EXPECT_NE(report[0].find("0->1"), std::string::npos) << report[0];
}

TEST(HopAudit, DeclaredFrameIsClean) {
  machine::SimMachine m(2);
  Runtime rt(m);
  rt.node_store(1).emplace<Counter>();
  rt.inject(0, "declarer", frame_declarer);
  rt.run();
  EXPECT_EQ(rt.hop_audit_flags(), 0u);
  EXPECT_TRUE(rt.hop_audit_report().empty());
}

TEST(HopAudit, CanBeDisabled) {
  machine::SimMachine m(2);
  Runtime rt(m);
  rt.set_hop_audit(false);
  rt.node_store(1).emplace<Counter>();
  rt.inject(0, "hoarder", frame_hoarder);
  rt.run();
  EXPECT_EQ(rt.hop_audit_flags(), 0u);
}

TEST(HopAudit, CargoCarriersOfTheCatalogAreClean) {
  // The audit heuristic never fires on the converted carriers: their bulk
  // state lives in heap-backed vectors declared via Cargo, so the frames
  // stay small.  (The full bit-identical strict-migration sweep lives in
  // cargo_test.cpp.)
  machine::SimMachine m(4);
  Runtime rt(m);
  for (int pe = 0; pe < 4; ++pe) rt.node_store(pe).emplace<Counter>();
  rt.inject(0, "tourist", tourist, 2);
  rt.run();
  EXPECT_EQ(rt.hop_audit_flags(), 0u);
}

}  // namespace
}  // namespace navcpp::navp
