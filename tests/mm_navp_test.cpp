// Correctness of the six NavP matrix multiplications against the dense
// reference product, across backends, variants, and problem shapes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"
#include "support/error.h"

namespace navcpp::mm {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::PhantomStorage;
using linalg::RealStorage;

std::unique_ptr<machine::Engine> make_engine(const std::string& backend,
                                             int pes,
                                             const perfmodel::Testbed& tb) {
  if (backend == "sim") {
    return std::make_unique<machine::SimMachine>(pes, tb.lan);
  }
  auto m = std::make_unique<machine::ThreadedMachine>(pes);
  m->set_stall_timeout(10.0);
  return m;
}

MmConfig small_config(int order, int block) {
  MmConfig cfg;
  cfg.order = order;
  cfg.block_order = block;
  return cfg;
}

// --- sequential reference --------------------------------------------------

TEST(SequentialMm, MatchesDenseProduct) {
  const Matrix a = Matrix::random(24, 24, 1);
  const Matrix b = Matrix::random(24, 24, 2);
  auto ga = linalg::to_blocks(a, 4);
  auto gb = linalg::to_blocks(b, 4);
  BlockGrid<RealStorage> gc(24, 4);
  sequential_mm(ga, gb, gc);
  EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), linalg::multiply(a, b)),
            1e-10);
}

TEST(SequentialMm, PhantomRunsShapeChecksOnly) {
  BlockGrid<PhantomStorage> ga(16, 4), gb(16, 4), gc(16, 4);
  sequential_mm(ga, gb, gc);  // must not throw
}

TEST(SequentialMm, ModeledTimeUsesPagingBeyondRam) {
  MmConfig cfg = small_config(9216, 128);
  EXPECT_GT(sequential_mm_seconds(cfg),
            2.0 * sequential_mm_seconds_in_core(cfg));
}

// --- 1D variants ------------------------------------------------------------

struct Case1D {
  std::string backend;
  Navp1dVariant variant;
  int order;
  int block;
  int pes;
};

class Navp1dCorrectness : public ::testing::TestWithParam<Case1D> {};

TEST_P(Navp1dCorrectness, MatchesDenseProduct) {
  const auto& p = GetParam();
  const Matrix a = Matrix::random(p.order, p.order, 21);
  const Matrix b = Matrix::random(p.order, p.order, 22);
  const MmConfig cfg = small_config(p.order, p.block);
  auto engine = make_engine(p.backend, p.pes, cfg.testbed);

  auto ga = linalg::to_blocks(a, p.block);
  auto gb = linalg::to_blocks(b, p.block);
  BlockGrid<RealStorage> gc(p.order, p.block);
  const MmStats stats = navp_mm_1d(*engine, cfg, p.variant, ga, gb, gc);

  EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), linalg::multiply(a, b)),
            1e-9);
  EXPECT_GT(stats.hops, 0u);
  if (p.backend == "sim") {
    EXPECT_GT(stats.seconds, 0.0);
  }
}

std::string case1d_name(const ::testing::TestParamInfo<Case1D>& info) {
  const auto& p = info.param;
  std::string v = p.variant == Navp1dVariant::kDsc          ? "dsc"
                  : p.variant == Navp1dVariant::kPipelined  ? "pipe"
                                                            : "phase";
  return p.backend + "_" + v + "_n" + std::to_string(p.order) + "b" +
         std::to_string(p.block) + "p" + std::to_string(p.pes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Navp1dCorrectness,
    ::testing::Values(
        // sim backend
        Case1D{"sim", Navp1dVariant::kDsc, 24, 4, 3},
        Case1D{"sim", Navp1dVariant::kPipelined, 24, 4, 3},
        Case1D{"sim", Navp1dVariant::kPhaseShifted, 24, 4, 3},
        Case1D{"sim", Navp1dVariant::kDsc, 32, 4, 4},
        Case1D{"sim", Navp1dVariant::kPipelined, 32, 4, 8},
        Case1D{"sim", Navp1dVariant::kPhaseShifted, 32, 4, 8},
        Case1D{"sim", Navp1dVariant::kPhaseShifted, 20, 4, 5},
        Case1D{"sim", Navp1dVariant::kDsc, 16, 16, 1},  // degenerate 1 PE
        Case1D{"sim", Navp1dVariant::kPipelined, 18, 3, 2},
        // threaded backend (real concurrency)
        Case1D{"threaded", Navp1dVariant::kDsc, 24, 4, 3},
        Case1D{"threaded", Navp1dVariant::kPipelined, 24, 4, 3},
        Case1D{"threaded", Navp1dVariant::kPhaseShifted, 24, 4, 3},
        Case1D{"threaded", Navp1dVariant::kPipelined, 32, 4, 8},
        Case1D{"threaded", Navp1dVariant::kPhaseShifted, 32, 8, 4}),
    case1d_name);

TEST(Navp1d, RejectsIndivisibleBlockCount) {
  machine::SimMachine m(3);
  const MmConfig cfg = small_config(16, 4);  // nb=4, pes=3: 4 % 3 != 0
  BlockGrid<RealStorage> g(16, 4), c(16, 4);
  EXPECT_THROW(navp_mm_1d(m, cfg, Navp1dVariant::kDsc, g, g, c),
               support::LogicError);
}

TEST(Navp1d, RejectsNonDividingBlockOrder) {
  machine::SimMachine m(3);
  const MmConfig cfg = small_config(17, 4);
  BlockGrid<RealStorage> g(17, 4), c(17, 4);
  EXPECT_THROW(navp_mm_1d(m, cfg, Navp1dVariant::kDsc, g, g, c),
               support::LogicError);
}

// --- 2D variants ------------------------------------------------------------

struct Case2D {
  std::string backend;
  Navp2dVariant variant;
  int order;
  int block;
  int grid;  // grid x grid PEs
};

class Navp2dCorrectness : public ::testing::TestWithParam<Case2D> {};

TEST_P(Navp2dCorrectness, MatchesDenseProduct) {
  const auto& p = GetParam();
  const Matrix a = Matrix::random(p.order, p.order, 31);
  const Matrix b = Matrix::random(p.order, p.order, 32);
  const MmConfig cfg = small_config(p.order, p.block);
  auto engine = make_engine(p.backend, p.grid * p.grid, cfg.testbed);

  auto ga = linalg::to_blocks(a, p.block);
  auto gb = linalg::to_blocks(b, p.block);
  BlockGrid<RealStorage> gc(p.order, p.block);
  const MmStats stats = navp_mm_2d(*engine, cfg, p.variant, ga, gb, gc);

  EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), linalg::multiply(a, b)),
            1e-9);
  EXPECT_GT(stats.hops, 0u);
}

std::string case2d_name(const ::testing::TestParamInfo<Case2D>& info) {
  const auto& p = info.param;
  std::string v = p.variant == Navp2dVariant::kDsc          ? "dsc"
                  : p.variant == Navp2dVariant::kPipelined  ? "pipe"
                                                            : "phase";
  return p.backend + "_" + v + "_n" + std::to_string(p.order) + "b" +
         std::to_string(p.block) + "g" + std::to_string(p.grid);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Navp2dCorrectness,
    ::testing::Values(
        // sim backend
        Case2D{"sim", Navp2dVariant::kDsc, 24, 4, 3},
        Case2D{"sim", Navp2dVariant::kPipelined, 24, 4, 3},
        Case2D{"sim", Navp2dVariant::kPhaseShifted, 24, 4, 3},
        Case2D{"sim", Navp2dVariant::kDsc, 16, 4, 2},
        Case2D{"sim", Navp2dVariant::kPipelined, 16, 4, 2},
        Case2D{"sim", Navp2dVariant::kPhaseShifted, 16, 4, 2},
        Case2D{"sim", Navp2dVariant::kPipelined, 40, 4, 5},
        Case2D{"sim", Navp2dVariant::kPhaseShifted, 36, 6, 3},
        Case2D{"sim", Navp2dVariant::kDsc, 12, 4, 1},  // 1x1 grid
        // threaded backend
        Case2D{"threaded", Navp2dVariant::kDsc, 24, 4, 3},
        Case2D{"threaded", Navp2dVariant::kPipelined, 24, 4, 3},
        Case2D{"threaded", Navp2dVariant::kPhaseShifted, 24, 4, 3},
        Case2D{"threaded", Navp2dVariant::kPipelined, 16, 4, 2},
        Case2D{"threaded", Navp2dVariant::kPhaseShifted, 16, 4, 2}),
    case2d_name);

TEST(Navp2d, RejectsNonSquarePeCount) {
  machine::SimMachine m(6);
  const MmConfig cfg = small_config(24, 4);
  BlockGrid<RealStorage> g(24, 4), c(24, 4);
  EXPECT_THROW(navp_mm_2d(m, cfg, Navp2dVariant::kDsc, g, g, c),
               support::LogicError);
}

// --- cross-validation: phantom timing == real timing -----------------------

class PhantomTimingEquality
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PhantomTimingEquality, OneDimensional) {
  const auto [order, pes] = GetParam();
  const MmConfig cfg = small_config(order, 4);
  for (auto variant : {Navp1dVariant::kDsc, Navp1dVariant::kPipelined,
                       Navp1dVariant::kPhaseShifted}) {
    machine::SimMachine real_m(pes, cfg.testbed.lan);
    machine::SimMachine phantom_m(pes, cfg.testbed.lan);
    const Matrix a = Matrix::random(order, order, 7);
    const Matrix b = Matrix::random(order, order, 8);
    auto ga = linalg::to_blocks(a, 4);
    auto gb = linalg::to_blocks(b, 4);
    BlockGrid<RealStorage> gc(order, 4);
    BlockGrid<PhantomStorage> pa(order, 4), pb(order, 4), pc(order, 4);
    const MmStats real = navp_mm_1d(real_m, cfg, variant, ga, gb, gc);
    const MmStats phantom = navp_mm_1d(phantom_m, cfg, variant, pa, pb, pc);
    EXPECT_DOUBLE_EQ(real.seconds, phantom.seconds)
        << to_string(variant) << " order=" << order;
    EXPECT_EQ(real.hops, phantom.hops);
    EXPECT_EQ(real.bytes, phantom.bytes);
  }
}

TEST_P(PhantomTimingEquality, TwoDimensional) {
  const auto [order, grid] = GetParam();
  if (order % (4 * grid) != 0) GTEST_SKIP();
  const MmConfig cfg = small_config(order, 4);
  for (auto variant : {Navp2dVariant::kDsc, Navp2dVariant::kPipelined,
                       Navp2dVariant::kPhaseShifted}) {
    machine::SimMachine real_m(grid * grid, cfg.testbed.lan);
    machine::SimMachine phantom_m(grid * grid, cfg.testbed.lan);
    const Matrix a = Matrix::random(order, order, 7);
    const Matrix b = Matrix::random(order, order, 8);
    auto ga = linalg::to_blocks(a, 4);
    auto gb = linalg::to_blocks(b, 4);
    BlockGrid<RealStorage> gc(order, 4);
    BlockGrid<PhantomStorage> pa(order, 4), pb(order, 4), pc(order, 4);
    const MmStats real = navp_mm_2d(real_m, cfg, variant, ga, gb, gc);
    const MmStats phantom = navp_mm_2d(phantom_m, cfg, variant, pa, pb, pc);
    EXPECT_DOUBLE_EQ(real.seconds, phantom.seconds)
        << to_string(variant) << " order=" << order;
    EXPECT_EQ(real.hops, phantom.hops);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PhantomTimingEquality,
                         ::testing::Values(std::tuple{24, 3},
                                           std::tuple{16, 2},
                                           std::tuple{32, 4}));

// --- performance-shape sanity on the simulated testbed ----------------------

TEST(NavpShape, PipelineBeatsDscAndPhaseBeatsPipeline1D) {
  MmConfig cfg = small_config(768, 64);  // nb = 12 over 3 PEs
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);

  auto run = [&](Navp1dVariant v) {
    machine::SimMachine m(3, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    return navp_mm_1d(m, cfg, v, a, b, c).seconds;
  };
  const double dsc = run(Navp1dVariant::kDsc);
  const double pipe = run(Navp1dVariant::kPipelined);
  const double phase = run(Navp1dVariant::kPhaseShifted);
  EXPECT_GT(dsc, pipe);
  EXPECT_GT(pipe, phase);
  // DSC is distributed *sequential*: roughly the sequential time plus hops.
  const double seq = sequential_mm_seconds_in_core(cfg);
  EXPECT_GT(dsc, seq);
  EXPECT_LT(dsc, seq * 1.25);
  // Phase shifting approaches 3x on 3 PEs.
  EXPECT_GT(seq / phase, 2.2);
}

TEST(NavpShape, SecondDimensionImprovesSpeedup) {
  // The paper's smallest Table 4 row: N=1536, block 128, 3x3 PEs.  At this
  // compute/communication ratio (39 ms per block GEMM vs ~10.5 ms per block
  // transfer) phase shifting beats pipelining, which beats 2D DSC — the
  // ordering of Table 4.  (With much smaller blocks the initial staggering
  // cost can outweigh the pipeline-fill cost and flip pipeline ahead; the
  // paper never operates in that regime.)
  MmConfig cfg = small_config(1536, 128);  // nb = 12; 3x3 grid
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  auto run2d = [&](Navp2dVariant v) {
    machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    return navp_mm_2d(m, cfg, v, a, b, c).seconds;
  };
  const double seq = sequential_mm_seconds_in_core(cfg);
  const double dsc = run2d(Navp2dVariant::kDsc);
  const double pipe = run2d(Navp2dVariant::kPipelined);
  const double phase = run2d(Navp2dVariant::kPhaseShifted);
  EXPECT_GT(dsc, pipe);
  EXPECT_GT(pipe, phase);
  EXPECT_GT(seq / phase, 5.0);  // paper: 7.97 at this row
  EXPECT_GT(seq / dsc, 3.5);    // paper: 4.79 at this row
}

}  // namespace
}  // namespace navcpp::mm
