// Tests for the navp coordination patterns and the constructive
// communication-phase scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "linalg/stagger.h"
#include "support/rng.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/patterns.h"
#include "navp/runtime.h"

namespace navcpp::navp {
namespace {

struct PeScratch {
  int touches = 0;
  double value = 0.0;
};

class PatternsBothBackends : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<machine::Engine> make_machine(int pes) {
    if (GetParam() == "sim") {
      return std::make_unique<machine::SimMachine>(pes);
    }
    auto m = std::make_unique<machine::ThreadedMachine>(pes);
    m->set_stall_timeout(5.0);
    return m;
  }
};

Mission run_parallel_for(Ctx ctx, bool* done) {
  const WorkerBody body = [](Ctx& wctx, int) -> Task<void> {
    ++wctx.node<PeScratch>().touches;
    co_return;
  };
  co_await parallel_for_pes(ctx, body);
  *done = true;
}

TEST_P(PatternsBothBackends, ParallelForTouchesEveryPeOnce) {
  auto m = make_machine(5);
  Runtime rt(*m);
  for (int pe = 0; pe < 5; ++pe) rt.node_store(pe).emplace<PeScratch>();
  bool done = false;
  rt.inject(2, "driver", run_parallel_for, &done);
  rt.run();
  EXPECT_TRUE(done);
  for (int pe = 0; pe < 5; ++pe) {
    EXPECT_EQ(rt.node_store(pe).get<PeScratch>().touches, 1) << pe;
  }
  // Driver + 5 workers.
  EXPECT_EQ(rt.agents_completed(), 6u);
}

Mission run_spawn_subset(Ctx ctx, int count, bool* done) {
  const WorkerBody body = [](Ctx& wctx, int index) -> Task<void> {
    wctx.node<PeScratch>().value += index + 1;
    co_return;
  };
  co_await spawn_and_await(
      ctx, count, [](int i) { return i % 2; }, body, /*token=*/7);
  *done = true;
}

TEST_P(PatternsBothBackends, SpawnAndAwaitRunsAllWorkers) {
  auto m = make_machine(3);
  Runtime rt(*m);
  for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<PeScratch>();
  bool done = false;
  rt.inject(0, "driver", run_spawn_subset, 6, &done);
  rt.run();
  EXPECT_TRUE(done);
  // Workers 0,2,4 land on PE 0 (values 1+3+5), 1,3,5 on PE 1 (2+4+6).
  EXPECT_DOUBLE_EQ(rt.node_store(0).get<PeScratch>().value, 9.0);
  EXPECT_DOUBLE_EQ(rt.node_store(1).get<PeScratch>().value, 12.0);
  EXPECT_DOUBLE_EQ(rt.node_store(2).get<PeScratch>().value, 0.0);
}

Mission run_ring(Ctx ctx, double* out) {
  const std::function<double(double, int)> step = [](double acc, int pe) {
    return acc + pe + 1;
  };
  *out = co_await ring_token<double>(ctx, 100.0, step);
}

TEST_P(PatternsBothBackends, RingTokenFoldsOverEveryPe) {
  auto m = make_machine(4);
  Runtime rt(*m);
  double out = 0.0;
  rt.inject(1, "ring", run_ring, &out);
  rt.run();
  EXPECT_DOUBLE_EQ(out, 100.0 + 1 + 2 + 3 + 4);
}

Mission nested_patterns(Ctx ctx, int* total) {
  // A driver whose workers themselves use ring_token: patterns compose.
  const WorkerBody body = [](Ctx& wctx, int) -> Task<void> {
    const std::function<double(double, int)> step = [](double acc, int) {
      return acc + 1;
    };
    const double laps = co_await ring_token<double>(wctx, 0.0, step);
    wctx.node<PeScratch>().value += laps;
  };
  co_await parallel_for_pes(ctx, body, /*token=*/3);
  int sum = 0;
  for (int pe = 0; pe < ctx.pe_count(); ++pe) sum += 1;
  *total = sum;
}

TEST_P(PatternsBothBackends, PatternsCompose) {
  auto m = make_machine(3);
  Runtime rt(*m);
  for (int pe = 0; pe < 3; ++pe) rt.node_store(pe).emplace<PeScratch>();
  int total = 0;
  rt.inject(0, "driver", nested_patterns, &total);
  rt.run();
  EXPECT_EQ(total, 3);
  double sum = 0.0;
  for (int pe = 0; pe < 3; ++pe) {
    sum += rt.node_store(pe).get<PeScratch>().value;
  }
  EXPECT_DOUBLE_EQ(sum, 9.0);  // 3 workers x 3 PEs visited each
}

INSTANTIATE_TEST_SUITE_P(Backends, PatternsBothBackends,
                         ::testing::Values(std::string("sim"),
                                           std::string("threaded")),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace navcpp::navp

namespace navcpp::linalg {
namespace {

TEST(CommSchedule, WitnessesTheBoundForStaggerPermutations) {
  for (int n = 2; n <= 12; ++n) {
    for (int i = 0; i < n; ++i) {
      for (const auto& perm :
           {forward_row_permutation(i, n), reverse_row_permutation(i, n)}) {
        const auto schedule = schedule_comm_phases(perm);
        const int used = validate_comm_schedule(perm, schedule);
        EXPECT_EQ(used, min_comm_phases(perm))
            << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(CommSchedule, RandomPermutationsAreFeasibleAndTight) {
  navcpp::support::Rng rng(2026);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.below(14));
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
    std::shuffle(perm.begin(), perm.end(), rng);
    const auto schedule = schedule_comm_phases(perm);
    EXPECT_EQ(validate_comm_schedule(perm, schedule),
              min_comm_phases(perm));
  }
}

TEST(CommSchedule, IdentityNeedsNoPhases) {
  const std::vector<int> id{0, 1, 2, 3};
  const auto schedule = schedule_comm_phases(id);
  EXPECT_EQ(validate_comm_schedule(id, schedule), 0);
  for (int s : schedule) EXPECT_EQ(s, kNoMessage);
}

TEST(CommSchedule, ValidatorCatchesConflicts) {
  // Two messages sharing an endpoint in the same phase.
  const std::vector<int> perm{1, 2, 0};  // 3-cycle
  std::vector<int> bad{0, 0, 0};         // all in one phase
  EXPECT_THROW(validate_comm_schedule(perm, bad), support::LogicError);
}

TEST(CommSchedule, ValidatorChecksFixedPointMarking) {
  const std::vector<int> perm{0, 2, 1};
  std::vector<int> bad{0, 0, 1};  // fixed point 0 wrongly scheduled
  EXPECT_THROW(validate_comm_schedule(perm, bad), support::LogicError);
}

}  // namespace
}  // namespace navcpp::linalg
