// Tests for the block-cyclic layout option: ownership maps, correctness of
// every NavP stage under cyclic distribution, and the slab-only guards of
// the SPMD tile algorithms.
#include <gtest/gtest.h>

#include <set>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/summa_mm.h"
#include "support/error.h"

namespace navcpp::mm {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::RealStorage;

TEST(Layout, CyclicOwnershipRoundRobins) {
  Dist1D d(12, 3, Layout::kCyclic);
  EXPECT_EQ(d.owner(0), 0);
  EXPECT_EQ(d.owner(1), 1);
  EXPECT_EQ(d.owner(2), 2);
  EXPECT_EQ(d.owner(3), 0);
  EXPECT_EQ(d.owner(11), 2);
}

TEST(Layout, SlabOwnershipIsContiguous) {
  Dist1D d(12, 3, Layout::kSlab);
  for (int b = 0; b < 4; ++b) EXPECT_EQ(d.owner(b), 0);
  for (int b = 4; b < 8; ++b) EXPECT_EQ(d.owner(b), 1);
  for (int b = 8; b < 12; ++b) EXPECT_EQ(d.owner(b), 2);
}

TEST(Layout, BothLayoutsBalancePerfectly) {
  for (Layout layout : {Layout::kSlab, Layout::kCyclic}) {
    Dist2D d(12, 3, layout);
    std::map<int, int> counts;
    for (int bi = 0; bi < 12; ++bi) {
      for (int bj = 0; bj < 12; ++bj) ++counts[d.owner(bi, bj)];
    }
    EXPECT_EQ(counts.size(), 9u);
    for (const auto& [pe, n] : counts) EXPECT_EQ(n, 16) << "pe " << pe;
  }
}

TEST(Layout, CyclicSpreadsConsecutiveBlocksAcrossPes) {
  Dist2D d(12, 3, Layout::kCyclic);
  // Consecutive block-columns of one row live on three different PEs.
  std::set<int> owners;
  for (int bj = 0; bj < 3; ++bj) owners.insert(d.owner(0, bj));
  EXPECT_EQ(owners.size(), 3u);
}

class CyclicCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CyclicCorrectness, All1dVariantsMatchReference) {
  const auto [order, block, pes] = GetParam();
  MmConfig cfg;
  cfg.order = order;
  cfg.block_order = block;
  cfg.layout = Layout::kCyclic;
  const Matrix a = Matrix::random(order, order, 91);
  const Matrix b = Matrix::random(order, order, 92);
  const Matrix want = linalg::multiply(a, b);
  auto ga = linalg::to_blocks(a, block);
  auto gb = linalg::to_blocks(b, block);
  for (auto v : {Navp1dVariant::kDsc, Navp1dVariant::kPipelined,
                 Navp1dVariant::kPhaseShifted}) {
    machine::SimMachine m(pes, cfg.testbed.lan);
    BlockGrid<RealStorage> gc(order, block);
    navp_mm_1d(m, cfg, v, ga, gb, gc);
    EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), want), 1e-9)
        << to_string(v);
  }
}

TEST_P(CyclicCorrectness, All2dVariantsMatchReference) {
  const auto [order, block, grid] = GetParam();
  if (grid * grid > 9) GTEST_SKIP();
  MmConfig cfg;
  cfg.order = order;
  cfg.block_order = block;
  cfg.layout = Layout::kCyclic;
  const Matrix a = Matrix::random(order, order, 93);
  const Matrix b = Matrix::random(order, order, 94);
  const Matrix want = linalg::multiply(a, b);
  auto ga = linalg::to_blocks(a, block);
  auto gb = linalg::to_blocks(b, block);
  for (auto v : {Navp2dVariant::kDsc, Navp2dVariant::kPipelined,
                 Navp2dVariant::kPhaseShifted}) {
    machine::SimMachine m(grid * grid, cfg.testbed.lan);
    BlockGrid<RealStorage> gc(order, block);
    navp_mm_2d(m, cfg, v, ga, gb, gc);
    EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), want), 1e-9)
        << to_string(v);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CyclicCorrectness,
                         ::testing::Values(std::tuple{24, 4, 3},
                                           std::tuple{16, 4, 2},
                                           std::tuple{36, 6, 3}));

TEST(Layout, SpmdTileAlgorithmsRejectCyclic) {
  MmConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;
  cfg.layout = Layout::kCyclic;
  BlockGrid<RealStorage> g(24, 4), c(24, 4);
  machine::SimMachine m(9, cfg.testbed.lan);
  EXPECT_THROW(gentleman_mm(m, cfg, StaggerMode::kDirect, g, g, c),
               support::LogicError);
  EXPECT_THROW(summa_mm(m, cfg, g, g, c), support::LogicError);
}

TEST(Layout, CyclicFixesThe2dDscClustering) {
  // The headline of bench_layout_ablation as a regression test: at the
  // paper's smallest Table 4 configuration, cyclic 2D DSC must beat slab
  // 2D DSC by a wide margin.
  MmConfig slab;
  slab.order = 1536;
  slab.block_order = 128;
  MmConfig cyclic = slab;
  cyclic.layout = Layout::kCyclic;
  BlockGrid<linalg::PhantomStorage> a(1536, 128), b(1536, 128);
  auto run = [&](const MmConfig& cfg) {
    machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<linalg::PhantomStorage> c(1536, 128);
    return navp_mm_2d(m, cfg, Navp2dVariant::kDsc, a, b, c).seconds;
  };
  EXPECT_LT(run(cyclic), 0.85 * run(slab));
}

}  // namespace
}  // namespace navcpp::mm
