// Tests for the block LU case study.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "apps/lu.h"
#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "support/error.h"

namespace navcpp::apps {
namespace {

TEST(LuSequential, ReconstructsTheMatrix) {
  const linalg::Matrix a = diagonally_dominant(24, 7);
  const auto [l, u] = lu_sequential(a);
  EXPECT_LT(lu_reconstruction_error(a, l, u), 1e-9);
}

TEST(LuSequential, LIsUnitLowerAndUIsUpper) {
  const linalg::Matrix a = diagonally_dominant(12, 8);
  const auto [l, u] = lu_sequential(a);
  for (int i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(l(i, i), 1.0);
    for (int j = i + 1; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(l(i, j), 0.0);
      EXPECT_DOUBLE_EQ(u(j, i), 0.0);
    }
  }
}

TEST(LuSequential, IdentityFactorsTrivially) {
  const linalg::Matrix i = linalg::Matrix::identity(8);
  const auto [l, u] = lu_sequential(i);
  EXPECT_EQ(l, i);
  EXPECT_EQ(u, i);
}

TEST(LuSequential, SingularPivotIsRejected) {
  linalg::Matrix z(4, 4);  // all zeros: first pivot vanishes
  EXPECT_THROW(lu_sequential(z), support::LogicError);
}

struct CaseLu {
  std::string backend;
  LuVariant variant;
  int order;
  int block;
  int pes;
};

class LuCorrectness : public ::testing::TestWithParam<CaseLu> {};

TEST_P(LuCorrectness, MatchesSequentialFactorization) {
  const auto& p = GetParam();
  LuConfig cfg;
  cfg.order = p.order;
  cfg.block_order = p.block;
  const linalg::Matrix a = diagonally_dominant(p.order, 99);
  const auto [lw, uw] = lu_sequential(a);

  std::unique_ptr<machine::Engine> engine;
  if (p.backend == "sim") {
    engine = std::make_unique<machine::SimMachine>(p.pes, cfg.testbed.lan);
  } else {
    auto m = std::make_unique<machine::ThreadedMachine>(p.pes);
    m->set_stall_timeout(10.0);
    engine = std::move(m);
  }
  LuStats stats;
  const auto [l, u] = lu_navp(*engine, cfg, p.variant, a, &stats);
  // Same arithmetic in a different association order: tight but not
  // bitwise tolerance.
  EXPECT_LT(linalg::max_abs_diff(l, lw), 1e-8);
  EXPECT_LT(linalg::max_abs_diff(u, uw), 1e-8);
  EXPECT_LT(lu_reconstruction_error(a, l, u), 1e-8);
  EXPECT_GT(stats.hops, 0u);
}

std::string lu_name(const ::testing::TestParamInfo<CaseLu>& info) {
  const auto& p = info.param;
  return p.backend + (p.variant == LuVariant::kDsc ? "_dsc_" : "_pipe_") +
         "n" + std::to_string(p.order) + "b" + std::to_string(p.block) +
         "p" + std::to_string(p.pes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LuCorrectness,
    ::testing::Values(CaseLu{"sim", LuVariant::kDsc, 24, 4, 3},
                      CaseLu{"sim", LuVariant::kDsc, 32, 8, 2},
                      CaseLu{"sim", LuVariant::kPipelined, 24, 4, 3},
                      CaseLu{"sim", LuVariant::kPipelined, 32, 4, 4},
                      CaseLu{"sim", LuVariant::kPipelined, 36, 6, 6},
                      CaseLu{"sim", LuVariant::kPipelined, 16, 16, 1},
                      CaseLu{"threaded", LuVariant::kDsc, 24, 4, 3},
                      CaseLu{"threaded", LuVariant::kPipelined, 24, 4, 3},
                      CaseLu{"threaded", LuVariant::kPipelined, 32, 4, 4}),
    lu_name);

TEST(LuNavp, PipeliningBeatsDscOnTheSimulatedTestbed) {
  LuConfig cfg;
  cfg.order = 1536;
  cfg.block_order = 128;
  const linalg::Matrix a = diagonally_dominant(cfg.order, 3);
  auto run = [&](LuVariant v) {
    machine::SimMachine m(4, cfg.testbed.lan);
    LuStats stats;
    lu_navp(m, cfg, v, a, &stats);
    return stats.seconds;
  };
  const double dsc = run(LuVariant::kDsc);
  const double pipe = run(LuVariant::kPipelined);
  const double seq = lu_sequential_seconds(cfg);
  EXPECT_LT(pipe, dsc);
  // DSC tracks the sequential cost; the triangular pipeline gains real
  // but sub-linear speedup (fill/drain dominate the shrinking tail).
  EXPECT_NEAR(dsc / seq, 1.0, 0.25);
  EXPECT_GT(seq / pipe, 1.5);
}

TEST(LuNavp, DeterministicVirtualTimes) {
  LuConfig cfg;
  cfg.order = 64;
  cfg.block_order = 8;
  const linalg::Matrix a = diagonally_dominant(64, 5);
  auto once = [&] {
    machine::SimMachine m(4, cfg.testbed.lan);
    LuStats stats;
    lu_navp(m, cfg, LuVariant::kPipelined, a, &stats);
    return stats.seconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(LuNavp, RejectsMismatchedConfig) {
  machine::SimMachine m(2);
  LuConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;
  const linalg::Matrix wrong = diagonally_dominant(12, 1);
  EXPECT_THROW(lu_navp(m, cfg, LuVariant::kDsc, wrong),
               support::LogicError);
}

}  // namespace
}  // namespace navcpp::apps
