// Property-based tests across the matrix-multiplication programs:
// algebraic identities, conservation laws, cost-accounting formulas, and
// determinism, over randomized inputs and parameter sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "mm/doall_mm.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"
#include "mm/summa_mm.h"
#include "mm/summa_mm_1d.h"
#include "support/rng.h"

namespace navcpp::mm {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::PhantomStorage;
using linalg::RealStorage;

MmConfig cfg_of(int order, int block) {
  MmConfig cfg;
  cfg.order = order;
  cfg.block_order = block;
  return cfg;
}

// --- algebraic identities over every distributed algorithm -----------------

enum class AnyAlgo {
  kNavp1dDsc,
  kNavp1dPipe,
  kNavp1dPhase,
  kNavp2dDsc,
  kNavp2dPipe,
  kNavp2dPhase,
  kGentleman,
  kCannon,
  kSumma,
  kSumma1d,
  kDoall,
};

template <class Storage>
MmStats run_any(machine::Engine& m, const MmConfig& cfg, AnyAlgo algo,
                const BlockGrid<Storage>& a, const BlockGrid<Storage>& b,
                BlockGrid<Storage>& c) {
  switch (algo) {
    case AnyAlgo::kNavp1dDsc:
      return navp_mm_1d(m, cfg, Navp1dVariant::kDsc, a, b, c);
    case AnyAlgo::kNavp1dPipe:
      return navp_mm_1d(m, cfg, Navp1dVariant::kPipelined, a, b, c);
    case AnyAlgo::kNavp1dPhase:
      return navp_mm_1d(m, cfg, Navp1dVariant::kPhaseShifted, a, b, c);
    case AnyAlgo::kNavp2dDsc:
      return navp_mm_2d(m, cfg, Navp2dVariant::kDsc, a, b, c);
    case AnyAlgo::kNavp2dPipe:
      return navp_mm_2d(m, cfg, Navp2dVariant::kPipelined, a, b, c);
    case AnyAlgo::kNavp2dPhase:
      return navp_mm_2d(m, cfg, Navp2dVariant::kPhaseShifted, a, b, c);
    case AnyAlgo::kGentleman:
      return gentleman_mm(m, cfg, StaggerMode::kDirect, a, b, c);
    case AnyAlgo::kCannon:
      return gentleman_mm(m, cfg, StaggerMode::kStepwise, a, b, c);
    case AnyAlgo::kSumma:
      return summa_mm(m, cfg, a, b, c);
    case AnyAlgo::kSumma1d:
      return summa_mm_1d(m, cfg, a, b, c);
    case AnyAlgo::kDoall:
      return doall_mm(m, cfg, a, b, c);
  }
  NAVCPP_CHECK(false, "unknown algo");
}

bool is_1d(AnyAlgo algo) {
  return algo == AnyAlgo::kNavp1dDsc || algo == AnyAlgo::kNavp1dPipe ||
         algo == AnyAlgo::kNavp1dPhase || algo == AnyAlgo::kSumma1d;
}

class EveryAlgo : public ::testing::TestWithParam<AnyAlgo> {
 protected:
  static constexpr int kOrder = 24;
  static constexpr int kBlock = 4;
  int pes() const { return is_1d(GetParam()) ? 3 : 9; }

  Matrix run_real(const Matrix& a, const Matrix& b) {
    const MmConfig cfg = cfg_of(kOrder, kBlock);
    machine::SimMachine m(pes(), cfg.testbed.lan);
    auto ga = linalg::to_blocks(a, kBlock);
    auto gb = linalg::to_blocks(b, kBlock);
    BlockGrid<RealStorage> gc(kOrder, kBlock);
    run_any(m, cfg, GetParam(), ga, gb, gc);
    return linalg::from_blocks(gc);
  }
};

TEST_P(EveryAlgo, IdentityTimesAIsA) {
  const Matrix a = Matrix::random(kOrder, kOrder, 71);
  EXPECT_LT(max_abs_diff(run_real(Matrix::identity(kOrder), a), a), 1e-10);
  EXPECT_LT(max_abs_diff(run_real(a, Matrix::identity(kOrder)), a), 1e-10);
}

TEST_P(EveryAlgo, ZeroTimesAnythingIsZero) {
  const Matrix a = Matrix::random(kOrder, kOrder, 72);
  const Matrix z = Matrix::zeros(kOrder);
  EXPECT_DOUBLE_EQ(frobenius_norm(run_real(z, a)), 0.0);
}

TEST_P(EveryAlgo, MatchesReferenceOnRandomInput) {
  const Matrix a = Matrix::random(kOrder, kOrder, 73);
  const Matrix b = Matrix::random(kOrder, kOrder, 74);
  EXPECT_LT(max_abs_diff(run_real(a, b), linalg::multiply(a, b)), 1e-9);
}

TEST_P(EveryAlgo, PermutationArgumentPermutesRows) {
  // P*A (P a permutation matrix) permutes A's rows; distributed runs must
  // agree exactly with the dense computation.
  support::Rng rng(75);
  Matrix p = Matrix::zeros(kOrder);
  std::vector<int> perm(kOrder);
  for (int i = 0; i < kOrder; ++i) perm[static_cast<size_t>(i)] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  for (int i = 0; i < kOrder; ++i) p(i, perm[static_cast<size_t>(i)]) = 1.0;
  const Matrix a = Matrix::random(kOrder, kOrder, 76);
  const Matrix got = run_real(p, a);
  for (int i = 0; i < kOrder; ++i) {
    for (int j = 0; j < kOrder; ++j) {
      EXPECT_DOUBLE_EQ(got(i, j), a(perm[static_cast<size_t>(i)], j));
    }
  }
}

TEST_P(EveryAlgo, VirtualTimeIsDeterministic) {
  const MmConfig cfg = cfg_of(kOrder, kBlock);
  BlockGrid<PhantomStorage> a(kOrder, kBlock), b(kOrder, kBlock);
  auto once = [&] {
    machine::SimMachine m(pes(), cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(kOrder, kBlock);
    return run_any(m, cfg, GetParam(), a, b, c).seconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryAlgo,
    ::testing::Values(AnyAlgo::kNavp1dDsc, AnyAlgo::kNavp1dPipe,
                      AnyAlgo::kNavp1dPhase, AnyAlgo::kNavp2dDsc,
                      AnyAlgo::kNavp2dPipe, AnyAlgo::kNavp2dPhase,
                      AnyAlgo::kGentleman, AnyAlgo::kCannon,
                      AnyAlgo::kSumma, AnyAlgo::kSumma1d, AnyAlgo::kDoall),
    [](const auto& info) {
      switch (info.param) {
        case AnyAlgo::kNavp1dDsc: return std::string("navp1d_dsc");
        case AnyAlgo::kNavp1dPipe: return std::string("navp1d_pipe");
        case AnyAlgo::kNavp1dPhase: return std::string("navp1d_phase");
        case AnyAlgo::kNavp2dDsc: return std::string("navp2d_dsc");
        case AnyAlgo::kNavp2dPipe: return std::string("navp2d_pipe");
        case AnyAlgo::kNavp2dPhase: return std::string("navp2d_phase");
        case AnyAlgo::kGentleman: return std::string("gentleman");
        case AnyAlgo::kCannon: return std::string("cannon");
        case AnyAlgo::kSumma: return std::string("summa");
        case AnyAlgo::kSumma1d: return std::string("summa1d");
        case AnyAlgo::kDoall: return std::string("doall");
      }
      return std::string("unknown");
    });

// --- cost accounting formulas ----------------------------------------------

TEST(CostAccounting, Dsc1dHopCountFormula) {
  // Figure 5 issues one hop per (mi, mj): nb^2 hops total (remote or not).
  const MmConfig cfg = cfg_of(48, 4);  // nb = 12
  machine::SimMachine m(3, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(48, 4), b(48, 4), c(48, 4);
  const MmStats stats = navp_mm_1d(m, cfg, Navp1dVariant::kDsc, a, b, c);
  EXPECT_EQ(stats.hops, 144u);
}

TEST(CostAccounting, Pipelined1dBytesScaleWithRowCrossings) {
  // Each carrier crosses P-1 PE boundaries carrying a full block-row of A
  // plus the hop state overhead; nothing else is ever on the wire.
  const MmConfig cfg = cfg_of(48, 4);  // nb = 12 over 3 PEs
  machine::SimMachine m(3, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(48, 4), b(48, 4), c(48, 4);
  const MmStats stats =
      navp_mm_1d(m, cfg, Navp1dVariant::kPipelined, a, b, c);
  const std::size_t row_bytes = 48 * 4 * sizeof(double);
  const std::size_t expect =
      12u * 2u * (row_bytes + cfg.testbed.hop_state_bytes);
  EXPECT_EQ(stats.bytes, expect);
  EXPECT_EQ(stats.messages, 24u);
}

TEST(CostAccounting, GentlemanMessageCountFormula) {
  // Direct staggering: every block whose skewed position is off-rank is
  // sent once; then nb-1 iterations ship one tile-boundary column of A and
  // one row of B per rank (w blocks each).
  const MmConfig cfg = cfg_of(24, 4);  // nb = 6, w = 2 on 3x3
  machine::SimMachine m(9, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(24, 4), b(24, 4), c(24, 4);
  const MmStats stats =
      gentleman_mm(m, cfg, StaggerMode::kDirect, a, b, c);
  // Shift traffic: (nb-1) iterations x 9 ranks x (w A-blocks + w B-blocks).
  const std::uint64_t shift_msgs = 5u * 9u * (2u + 2u);
  EXPECT_GT(stats.messages, shift_msgs);  // plus staggering
  // Staggering sends at most one message per A and per B block.
  EXPECT_LE(stats.messages, shift_msgs + 2u * 36u);
}

TEST(CostAccounting, FasterNetworkHelpsWithBoundedAnomalies) {
  // With a single carrier (DSC) the schedule is a chain, so doubling the
  // bandwidth is strictly monotone.  Multi-agent programs are queueing
  // systems: faster transfers can reorder FIFO arrivals and occasionally
  // produce a slightly *worse* schedule (a real timing anomaly, observed
  // here at ~3%), so we only bound the regression for those.
  const MmConfig slow_cfg = cfg_of(96, 8);
  MmConfig fast_cfg = slow_cfg;
  fast_cfg.testbed.lan.bandwidth *= 2.0;
  BlockGrid<PhantomStorage> a(96, 8), b(96, 8);
  auto run = [&](const MmConfig& cfg, Navp1dVariant v) {
    machine::SimMachine m(3, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(96, 8);
    return navp_mm_1d(m, cfg, v, a, b, c).seconds;
  };
  EXPECT_LE(run(fast_cfg, Navp1dVariant::kDsc),
            run(slow_cfg, Navp1dVariant::kDsc) + 1e-12);
  for (auto v : {Navp1dVariant::kPipelined, Navp1dVariant::kPhaseShifted}) {
    EXPECT_LE(run(fast_cfg, v), 1.05 * run(slow_cfg, v)) << to_string(v);
  }
  // And on a communication-heavy configuration (block-row transfers are
  // ~12% of the run), a 100x faster network is unambiguously better.
  const MmConfig heavy = cfg_of(768, 64);
  MmConfig infini = heavy;
  infini.testbed.lan.bandwidth *= 100.0;
  infini.testbed.lan.latency /= 100.0;
  BlockGrid<PhantomStorage> ha(768, 64), hb(768, 64);
  auto run_heavy = [&](const MmConfig& cfg, Navp1dVariant v) {
    machine::SimMachine m(3, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(768, 64);
    return navp_mm_1d(m, cfg, v, ha, hb, c).seconds;
  };
  for (auto v : {Navp1dVariant::kDsc, Navp1dVariant::kPipelined,
                 Navp1dVariant::kPhaseShifted}) {
    EXPECT_LT(run_heavy(infini, v), run_heavy(heavy, v)) << to_string(v);
  }
}

TEST(CostAccounting, MorePesReducePhaseShiftedTime) {
  // Strong scaling of the best program across PE counts that divide nb.
  const MmConfig cfg = cfg_of(768, 32);  // nb = 24
  BlockGrid<PhantomStorage> a(768, 32), b(768, 32);
  double prev = 1e100;
  for (int pes : {2, 3, 4, 6, 8, 12}) {
    machine::SimMachine m(pes, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(768, 32);
    const double t =
        navp_mm_1d(m, cfg, Navp1dVariant::kPhaseShifted, a, b, c).seconds;
    EXPECT_LT(t, prev) << "pes=" << pes;
    prev = t;
  }
}

TEST(CostAccounting, DaemonOverheadSlowsNavpRuns) {
  const MmConfig base = cfg_of(96, 8);
  MmConfig heavy = base;
  heavy.testbed.daemon_dispatch_overhead *= 20.0;
  BlockGrid<PhantomStorage> a(96, 8), b(96, 8), c1(96, 8), c2(96, 8);
  machine::SimMachine m1(9, base.testbed.lan), m2(9, heavy.testbed.lan);
  const double light =
      navp_mm_2d(m1, base, Navp2dVariant::kPhaseShifted, a, b, c1).seconds;
  const double slow =
      navp_mm_2d(m2, heavy, Navp2dVariant::kPhaseShifted, a, b, c2).seconds;
  EXPECT_GT(slow, light);
}

// --- conservation audits ----------------------------------------------------

TEST(Conservation, PhaseShifted2dConsumesEverySignal) {
  // EP/EC ping-pong: every signal is eventually consumed — leftover
  // signals would mean a mispaired round.
  const MmConfig cfg = cfg_of(24, 4);
  machine::SimMachine m(9, cfg.testbed.lan);
  const Matrix a = Matrix::random(24, 24, 81);
  const Matrix b = Matrix::random(24, 24, 82);
  auto ga = linalg::to_blocks(a, 4);
  auto gb = linalg::to_blocks(b, 4);
  BlockGrid<RealStorage> gc(24, 4);
  navp_mm_2d(m, cfg, Navp2dVariant::kPhaseShifted, ga, gb, gc);
  // The runner's runtime is internal; the observable invariant is the
  // product plus a clean finish (no deadlock, correct C).
  EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), linalg::multiply(a, b)),
            1e-9);
}

class RandomizedSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(RandomizedSweep, PhaseShifted2dMatchesReference) {
  const auto [order, block, grid] = GetParam();
  const MmConfig cfg = cfg_of(order, block);
  machine::SimMachine m(grid * grid, cfg.testbed.lan);
  const Matrix a = Matrix::random(order, order,
                                  static_cast<std::uint64_t>(order) * 7 + 1);
  const Matrix b = Matrix::random(order, order,
                                  static_cast<std::uint64_t>(block) * 13 + 2);
  auto ga = linalg::to_blocks(a, block);
  auto gb = linalg::to_blocks(b, block);
  BlockGrid<RealStorage> gc(order, block);
  navp_mm_2d(m, cfg, Navp2dVariant::kPhaseShifted, ga, gb, gc);
  EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), linalg::multiply(a, b)),
            1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RandomizedSweep,
    ::testing::Values(std::tuple{8, 2, 2}, std::tuple{16, 2, 4},
                      std::tuple{30, 5, 3}, std::tuple{32, 8, 2},
                      std::tuple{36, 4, 3}, std::tuple{50, 5, 5}));

}  // namespace
}  // namespace navcpp::mm

namespace navcpp::mm {
namespace {

TEST(CostAccounting, Pipelined2dMessageFormula) {
  // 2D pipeline on a 3x3 grid with nb=6 (w=2).  Network messages come from
  // exactly three sources: staging hops (every A/B block whose
  // anti-diagonal target is off-rank), ACarrier itinerary crossings, and
  // BCarrier itinerary crossings (each carrier visits 6 block-columns /
  // rows without wrapping back to its start).
  const MmConfig cfg = [] {
    MmConfig c;
    c.order = 24;
    c.block_order = 4;
    return c;
  }();
  machine::SimMachine m(9, cfg.testbed.lan);
  linalg::BlockGrid<linalg::PhantomStorage> a(24, 4), b(24, 4), c(24, 4);
  const MmStats stats = navp_mm_2d(m, cfg, Navp2dVariant::kPipelined, a, b,
                                   c);
  const Dist2D dist(6, 3);
  std::uint64_t expected = 0;
  for (int mi = 0; mi < 6; ++mi) {
    for (int bk = 0; bk < 6; ++bk) {
      if (dist.owner(mi, bk) != dist.owner(mi, 5 - mi)) ++expected;  // A stage
      if (dist.owner(bk, mi) != dist.owner(5 - mi, mi)) ++expected;  // B stage
    }
  }
  for (int mi = 0; mi < 6; ++mi) {
    for (int mk = 0; mk < 6; ++mk) {
      int prev_a = dist.owner(mi, (5 - mi) % 6);
      int prev_b = dist.owner((5 - mi) % 6, mi);
      for (int step = 1; step < 6; ++step) {
        const int col = (5 - mi + step) % 6;
        if (dist.owner(mi, col) != prev_a) ++expected;  // ACarrier crossing
        prev_a = dist.owner(mi, col);
        if (dist.owner(col, mi) != prev_b) ++expected;  // BCarrier crossing
        prev_b = dist.owner(col, mi);
      }
    }
  }
  EXPECT_EQ(stats.messages, expected);
}

}  // namespace
}  // namespace navcpp::mm
