// The reproduction contract, as tests: every qualitative claim
// EXPERIMENTS.md makes about Tables 1-4 is asserted here at paper scale
// (phantom storage), so any calibration or algorithm regression that
// would change the paper-facing story fails the suite.
#include <gtest/gtest.h>

#include <vector>

#include "harness/experiments.h"
#include "harness/paper_data.h"
#include "mm/common.h"
#include "mm/sequential_mm.h"
#include "perfmodel/curvefit.h"

namespace navcpp::harness {
namespace {

const mm::MmConfig kBase;  // the calibrated paper testbed

// --- Table 1: 3 PEs, 1-D ----------------------------------------------------

class Table1Row : public ::testing::TestWithParam<PaperRow1D> {};

TEST_P(Table1Row, OrderingAndBands) {
  const auto& p = GetParam();
  const Measured1D m = measure_1d_row(p.order, p.block, 3, kBase);
  const double seq = m.seq_in_core;
  // The incremental story: each transformation improves on its
  // predecessor; DSC is within a few percent of sequential.
  EXPECT_GT(m.dsc, seq) << "DSC adds hops to the sequential program";
  EXPECT_LT(m.dsc, seq * 1.12);
  EXPECT_LT(m.pipe, m.dsc);
  EXPECT_LT(m.phase, m.pipe);
  // Speedup bands: paper 2.36-2.54 (pipe), 2.67-2.76 (phase); we allow
  // our documented few-percent optimism.
  EXPECT_GT(seq / m.pipe, 2.3);
  EXPECT_LT(seq / m.pipe, 3.0);
  EXPECT_GT(seq / m.phase, 2.6);
  EXPECT_LT(seq / m.phase, 3.0);
  // Within 15% of the paper's measured seconds, row by row.
  EXPECT_NEAR(m.dsc, p.dsc_s, 0.15 * p.dsc_s);
  EXPECT_NEAR(m.phase, p.phase_s, 0.15 * p.phase_s);
}

INSTANTIATE_TEST_SUITE_P(Rows, Table1Row,
                         ::testing::ValuesIn(paper_table1()),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param.order);
                         });

// --- Table 2: out-of-core ----------------------------------------------------

TEST(Table2, ThrashingAndDscStory) {
  const auto& p = paper_table2();
  const Measured1D m = measure_1d_row(p.order, p.block, 8, kBase);
  const double fitted = curve_fit_sequential(
      kBase, {512, 768, 1024, 1536, 2048, 2560, 3072}, p.order);
  // The thrashing run blows up ~2.6x over the fitted in-core estimate.
  EXPECT_GT(m.seq_actual / fitted, 2.2);
  EXPECT_LT(m.seq_actual / fitted, 3.0);
  // DSC lands within a few percent of the in-core estimate...
  EXPECT_NEAR(m.dsc / fitted, p.dsc_su > 0 ? 1.0 / p.dsc_su : 1.07, 0.10);
  // ...and therefore beats the real sequential run by the paper's ~2.4x.
  EXPECT_NEAR(m.seq_actual / m.dsc, p.seq_measured_s / p.dsc_s, 0.25);
}

// --- Tables 3 and 4: 2-D grids ----------------------------------------------

struct Grid2DCase {
  PaperRow2D row;
  int grid;
};

class Table2DRow : public ::testing::TestWithParam<Grid2DCase> {};

TEST_P(Table2DRow, OrderingAndBands) {
  const auto& p = GetParam().row;
  const int grid = GetParam().grid;
  const Measured2D m = measure_2d_row(p.order, p.block, grid, kBase);
  const double seq = m.seq_in_core;
  const double ideal = grid * grid;

  // The paper's ordering at every row: 2D DSC slowest, then MPI, then
  // pipeline, then phase shifting.
  EXPECT_GT(m.dsc, m.mpi);
  // Gentleman must not beat the pipelined NavP program by more than a few
  // percent (documented deviation: at N=6144/block 256 our pipeline dips
  // ~3.5% below MPI; the paper has it 9% ahead there).
  EXPECT_GT(m.mpi, m.pipe * 0.94);
  EXPECT_LT(m.phase, m.mpi);
  // Phase shifting reaches 85-100% of the ideal speedup.
  EXPECT_GT(seq / m.phase, 0.85 * ideal);
  EXPECT_LT(seq / m.phase, 1.0 * ideal);
  // MPI within 20% of the paper's measured seconds.
  EXPECT_NEAR(m.mpi, p.mpi_s, 0.20 * p.mpi_s);
  EXPECT_NEAR(m.phase, p.phase_s, 0.15 * p.phase_s);
}

std::vector<Grid2DCase> all_2d_cases() {
  std::vector<Grid2DCase> cases;
  for (const auto& r : paper_table3()) cases.push_back({r, 2});
  for (const auto& r : paper_table4()) cases.push_back({r, 3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Rows, Table2DRow,
                         ::testing::ValuesIn(all_2d_cases()),
                         [](const auto& info) {
                           return "g" + std::to_string(info.param.grid) +
                                  "N" + std::to_string(info.param.row.order);
                         });

// --- the small-N ScaLAPACK crossover ----------------------------------------

TEST(Crossover, ScalapackStandInWinsOnlyAtTheSmallestTable4Row) {
  // Paper: ScaLAPACK 8.10 vs phase 7.97 at N=1536 — its only win.
  const Measured2D small = measure_2d_row(1536, 128, 3, kBase);
  EXPECT_LT(small.summa, small.phase);
}

}  // namespace
}  // namespace navcpp::harness
