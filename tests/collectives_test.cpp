// Tests for the mini-MPI collectives.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "minimpi/collectives.h"
#include "minimpi/world.h"
#include "navp/runtime.h"

namespace navcpp::minimpi {
namespace {

class CollectivesBothBackends : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<machine::Engine> make_machine(int pes) {
    if (GetParam() == "sim") {
      return std::make_unique<machine::SimMachine>(pes);
    }
    auto m = std::make_unique<machine::ThreadedMachine>(pes);
    m->set_stall_timeout(5.0);
    return m;
  }

  template <class F>
  void run(int pes, F rank_main) {
    auto m = make_machine(pes);
    navp::Runtime rt(*m);
    World world(rt);
    world.launch(rank_main);
    rt.run();
    EXPECT_FALSE(world.has_leftover_messages());
  }
};

TEST_P(CollectivesBothBackends, BcastDeliversToEveryRank) {
  static std::vector<std::vector<double>> got;
  got.assign(4, {});
  run(4, [](Comm comm) -> navp::Mission {
    std::vector<double> data;
    if (comm.rank() == 2) data = {1.5, 2.5, 3.5};
    got[static_cast<std::size_t>(comm.rank())] =
        co_await bcast(comm, 2, std::move(data));
  });
  for (const auto& v : got) {
    EXPECT_EQ(v, (std::vector<double>{1.5, 2.5, 3.5}));
  }
}

TEST_P(CollectivesBothBackends, ReduceSumsElementwise) {
  static std::vector<double> root_result;
  root_result.clear();
  run(4, [](Comm comm) -> navp::Mission {
    const double base = comm.rank() + 1;  // 1, 2, 3, 4
    std::vector<double> mine{base, 10 * base};
    auto result = co_await reduce(comm, 0, std::move(mine),
                                  [](double a, double b) { return a + b; });
    if (comm.rank() == 0) root_result = std::move(result);
  });
  EXPECT_EQ(root_result, (std::vector<double>{10.0, 100.0}));
}

TEST_P(CollectivesBothBackends, ReduceWithMaxCombiner) {
  static std::vector<double> root_result;
  root_result.clear();
  run(5, [](Comm comm) -> navp::Mission {
    std::vector<double> mine{static_cast<double>((comm.rank() * 7) % 5)};
    auto result =
        co_await reduce(comm, 1, std::move(mine),
                        [](double a, double b) { return std::max(a, b); });
    if (comm.rank() == 1) root_result = std::move(result);
  });
  EXPECT_EQ(root_result, (std::vector<double>{4.0}));
}

TEST_P(CollectivesBothBackends, GatherConcatenatesInRankOrder) {
  static std::vector<double> gathered;
  gathered.clear();
  run(3, [](Comm comm) -> navp::Mission {
    std::vector<double> mine{static_cast<double>(comm.rank()),
                             static_cast<double>(comm.rank()) + 0.5};
    auto result = co_await gather(comm, 0, std::move(mine));
    if (comm.rank() == 0) gathered = std::move(result);
  });
  EXPECT_EQ(gathered,
            (std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0, 2.5}));
}

TEST_P(CollectivesBothBackends, ScatterSplitsEvenly) {
  static std::vector<std::vector<double>> got;
  got.assign(3, {});
  run(3, [](Comm comm) -> navp::Mission {
    std::vector<double> data;
    if (comm.rank() == 0) {
      data = {0, 1, 2, 3, 4, 5};
    }
    got[static_cast<std::size_t>(comm.rank())] =
        co_await scatter(comm, 0, std::move(data));
  });
  EXPECT_EQ(got[0], (std::vector<double>{0, 1}));
  EXPECT_EQ(got[1], (std::vector<double>{2, 3}));
  EXPECT_EQ(got[2], (std::vector<double>{4, 5}));
}

TEST_P(CollectivesBothBackends, AllreduceGivesEveryRankTheSum) {
  static std::vector<std::vector<double>> got;
  got.assign(4, {});
  run(4, [](Comm comm) -> navp::Mission {
    std::vector<double> mine{1.0, static_cast<double>(comm.rank())};
    got[static_cast<std::size_t>(comm.rank())] = co_await allreduce(
        comm, std::move(mine), [](double a, double b) { return a + b; });
  });
  for (const auto& v : got) {
    EXPECT_EQ(v, (std::vector<double>{4.0, 6.0}));
  }
}

TEST_P(CollectivesBothBackends, RoundsKeepConcurrentCollectivesApart) {
  // Two broadcasts from different roots with different round ids, awaited
  // in opposite order by some ranks — tags must keep them straight.
  static std::vector<double> sums;
  sums.assign(4, 0.0);
  run(4, [](Comm comm) -> navp::Mission {
    std::vector<double> a, b;
    if (comm.rank() == 0) a = {100.0};
    if (comm.rank() == 3) b = {7.0};
    std::vector<double> first, second;
    if (comm.rank() % 2 == 0) {
      first = co_await bcast(comm, 0, std::move(a), /*round=*/1);
      second = co_await bcast(comm, 3, std::move(b), /*round=*/2);
    } else {
      second = co_await bcast(comm, 3, std::move(b), /*round=*/2);
      first = co_await bcast(comm, 0, std::move(a), /*round=*/1);
    }
    sums[static_cast<std::size_t>(comm.rank())] = first[0] + second[0];
  });
  for (double s : sums) EXPECT_EQ(s, 107.0);
}

TEST_P(CollectivesBothBackends, SingleRankCollectivesAreIdentity) {
  static std::vector<double> got;
  got.clear();
  run(1, [](Comm comm) -> navp::Mission {
    // Named locals: GCC 12 cannot keep initializer-list backing arrays
    // alive across a co_await (error: "array used as initializer").
    std::vector<double> one(1, 1.0), two(1, 2.0), three(1, 3.0),
        four(1, 4.0);
    auto b = co_await bcast(comm, 0, std::move(one));
    auto r = co_await reduce(comm, 0, std::move(two),
                             [](double x, double y) { return x + y; });
    auto g = co_await gather(comm, 0, std::move(three));
    auto s = co_await scatter(comm, 0, std::move(four));
    got.push_back(b[0]);
    got.push_back(r[0]);
    got.push_back(g[0]);
    got.push_back(s[0]);
  });
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(CollectivesSim, ReduceMismatchedSizesThrows) {
  machine::SimMachine m(2);
  navp::Runtime rt(m);
  World world(rt);
  world.launch([](Comm comm) -> navp::Mission {
    std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                             1.0);  // sizes 1 and 2
    (void)co_await reduce(comm, 0, std::move(mine),
                          [](double a, double b) { return a + b; });
  });
  EXPECT_THROW(rt.run(), support::LogicError);
}

TEST(CollectivesSim, ScatterIndivisibleThrows) {
  machine::SimMachine m(3);
  navp::Runtime rt(m);
  World world(rt);
  world.launch([](Comm comm) -> navp::Mission {
    std::vector<double> data;
    if (comm.rank() == 0) data = {1.0, 2.0};  // 2 elements over 3 ranks
    (void)co_await scatter(comm, 0, std::move(data));
  });
  EXPECT_THROW(rt.run(), support::Error);
}

INSTANTIATE_TEST_SUITE_P(Backends, CollectivesBothBackends,
                         ::testing::Values(std::string("sim"),
                                           std::string("threaded")),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace navcpp::minimpi
