// Stress and fuzz tests: randomized agent populations, event storms,
// network-model invariants, and cross-backend agreement — the suite that
// hunts for scheduling races and accounting leaks rather than functional
// bugs.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "net/link_model.h"
#include "support/rng.h"

namespace navcpp {
namespace {

using navp::Ctx;
using navp::EventKey;
using navp::Mission;
using navp::Runtime;

// --- randomized agent soup --------------------------------------------------

struct SoupState {
  std::vector<long> pe_visits;  // per-PE visit counters (PE-confined)
};

/// An agent driven by a private PRNG: random hops, event handshakes with a
/// partner, random compute charges.  Agent 2k and 2k+1 are partners: each
/// signals the other's key `k` exactly `rounds` times and waits as often,
/// so signals and waits balance by construction.
Mission soup_agent(Ctx ctx, std::uint64_t seed, int id, int rounds) {
  support::Rng rng(seed);
  const EventKey my_key{50, id / 2, 0};
  for (int r = 0; r < rounds; ++r) {
    const int dest = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(ctx.pe_count())));
    co_await ctx.hop(dest, 16 + rng.below(512));
    ctx.node<SoupState>().pe_visits[static_cast<std::size_t>(dest)]++;
    ctx.compute(1e-6 * static_cast<double>(rng.below(100)), "soup");
    // Handshake: partners rendezvous on PE 0 every round.
    co_await ctx.hop(0, 8);
    ctx.signal_event(my_key);
    co_await ctx.wait_event(my_key);
  }
}

TEST(Stress, RandomAgentSoupConservesEverything) {
  constexpr int kPes = 6;
  constexpr int kPairs = 12;
  constexpr int kRounds = 25;
  machine::SimMachine m(kPes);
  Runtime rt(m);
  for (int pe = 0; pe < kPes; ++pe) {
    rt.node_store(pe).emplace<SoupState>().pe_visits.assign(kPes, 0);
  }
  for (int id = 0; id < 2 * kPairs; ++id) {
    rt.inject(0, "soup" + std::to_string(id), soup_agent,
              0xdead + 31 * static_cast<std::uint64_t>(id), id, kRounds);
  }
  rt.run();
  EXPECT_EQ(rt.agents_injected(), static_cast<std::uint64_t>(2 * kPairs));
  EXPECT_EQ(rt.agents_completed(), rt.agents_injected());
  // Every signal is matched by a wait (the handshake balances).
  EXPECT_EQ(rt.signals_sent(), rt.waits_satisfied());
  EXPECT_EQ(rt.unconsumed_signals(), 0u);
  long visits = 0;
  for (int pe = 0; pe < kPes; ++pe) {
    const auto& v = rt.node_store(pe).get<SoupState>().pe_visits;
    for (long x : v) visits += x;
  }
  EXPECT_EQ(visits, static_cast<long>(2 * kPairs) * kRounds);
}

TEST(Stress, SoupIsDeterministicInVirtualTime) {
  auto once = [] {
    machine::SimMachine m(4);
    Runtime rt(m);
    for (int pe = 0; pe < 4; ++pe) {
      rt.node_store(pe).emplace<SoupState>().pe_visits.assign(4, 0);
    }
    for (int id = 0; id < 10; ++id) {
      rt.inject(0, "s", soup_agent, 7 * static_cast<std::uint64_t>(id) + 1,
                id, 15);
    }
    rt.run();
    return m.finish_time();
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(Stress, ThreadedSoupCompletesRepeatedly) {
  for (int trial = 0; trial < 5; ++trial) {
    machine::ThreadedMachine m(4);
    m.set_stall_timeout(10.0);
    Runtime rt(m);
    for (int pe = 0; pe < 4; ++pe) {
      rt.node_store(pe).emplace<SoupState>().pe_visits.assign(4, 0);
    }
    for (int id = 0; id < 8; ++id) {
      rt.inject(0, "s", soup_agent,
                static_cast<std::uint64_t>(trial) * 1000 + id, id, 10);
    }
    rt.run();
    EXPECT_EQ(rt.agents_completed(), 8u);
    EXPECT_EQ(rt.unconsumed_signals(), 0u);
  }
}

// --- deep spawning trees -----------------------------------------------------

Mission spawn_tree(Ctx ctx, int depth, int fanout) {
  if (depth > 0) {
    for (int c = 0; c < fanout; ++c) {
      ctx.inject("child", spawn_tree, depth - 1, fanout);
    }
  }
  co_await ctx.hop((ctx.here() + 1) % ctx.pe_count(), 32);
}

TEST(Stress, GeometricSpawnTreeAllComplete) {
  machine::SimMachine m(3);
  Runtime rt(m);
  rt.inject(0, "root", spawn_tree, 6, 3);
  rt.run();
  // 1 + 3 + 9 + ... + 3^6 agents.
  std::uint64_t expect = 0, pow = 1;
  for (int d = 0; d <= 6; ++d) {
    expect += pow;
    pow *= 3;
  }
  EXPECT_EQ(rt.agents_completed(), expect);
}

// --- event storms ------------------------------------------------------------

Mission storm_waiter(Ctx ctx, int count) {
  for (int i = 0; i < count; ++i) {
    co_await ctx.wait_event(EventKey{51, i % 7, 0});
  }
}

Mission storm_signaler(Ctx ctx, int count) {
  for (int i = 0; i < count; ++i) {
    ctx.signal_event(EventKey{51, i % 7, 0});
  }
  co_return;
}

TEST(Stress, ManyWaitersManySignalersDrainExactly) {
  machine::SimMachine m(1);
  Runtime rt(m);
  constexpr int kEach = 140;  // multiple of 7: keys balance
  for (int w = 0; w < 5; ++w) rt.inject(0, "w", storm_waiter, kEach);
  for (int s = 0; s < 5; ++s) rt.inject(0, "s", storm_signaler, kEach);
  rt.run();
  EXPECT_EQ(rt.signals_sent(), 5u * kEach);
  EXPECT_EQ(rt.waits_satisfied(), 5u * kEach);
  EXPECT_EQ(rt.unconsumed_signals(), 0u);
}

// --- network-model invariants ------------------------------------------------

TEST(Stress, NetworkDeliveryNeverPrecedesRequestPlusMinimumLatency) {
  support::Rng rng(404);
  net::LinkParams p;
  p.send_overhead = 1e-4;
  p.recv_overhead = 1e-4;
  p.latency = 5e-4;
  p.bandwidth = 1e7;
  net::NetworkModel net(6, p);
  double clock = 0.0;
  for (int i = 0; i < 5000; ++i) {
    clock += rng.uniform(0.0, 1e-3);
    const int src = static_cast<int>(rng.below(6));
    int dst = static_cast<int>(rng.below(6));
    const std::size_t bytes = 1 + rng.below(1 << 16);
    const auto tr = net.admit(src, dst, bytes, clock);
    ASSERT_GE(tr.sender_cpu_free, clock);
    if (src != dst) {
      const double min_arrival = clock + p.send_overhead + p.latency +
                                 static_cast<double>(bytes) / p.bandwidth;
      ASSERT_GE(tr.delivered_at, min_arrival - 1e-12);
    } else {
      ASSERT_GE(tr.delivered_at, clock);
    }
  }
}

TEST(Stress, NetworkSamePairDeliveriesAreFifo) {
  support::Rng rng(405);
  net::LinkParams p;
  net::NetworkModel net(4, p);
  std::vector<double> last(16, 0.0);
  double clock = 0.0;
  for (int i = 0; i < 5000; ++i) {
    clock += rng.uniform(0.0, 2e-3);
    const int src = static_cast<int>(rng.below(4));
    const int dst = static_cast<int>(rng.below(4));
    const auto tr = net.admit(src, dst, 1 + rng.below(1 << 14), clock);
    double& prev = last[static_cast<std::size_t>(src * 4 + dst)];
    ASSERT_GE(tr.delivered_at, prev)
        << "same-pair delivery reordered at message " << i;
    prev = tr.delivered_at;
  }
}

TEST(Stress, SimMachineClocksNeverRunBackwards) {
  support::Rng rng(406);
  machine::SimMachine m(5);
  Runtime rt(m);
  for (int id = 0; id < 10; ++id) {
    rt.inject(static_cast<int>(rng.below(5)), "walker",
              [](Ctx ctx, std::uint64_t seed) -> Mission {
                support::Rng r(seed);
                double last = ctx.now();
                for (int k = 0; k < 50; ++k) {
                  co_await ctx.hop(static_cast<int>(r.below(
                                       static_cast<std::uint64_t>(
                                           ctx.pe_count()))),
                                   r.below(4096));
                  NAVCPP_CHECK(ctx.now() >= last - 1e-12,
                               "virtual time ran backwards");
                  last = ctx.now();
                  ctx.compute(1e-6, "w");
                }
              },
              rng.next());
  }
  rt.run();
  EXPECT_EQ(rt.agents_completed(), 10u);
}

}  // namespace
}  // namespace navcpp
