// Tests for the navtool transformation planner: transformation selection
// mirrors the paper's applicability conditions; the emitted itineraries
// are exactly the paper's; interpreted plans compute correct results with
// correct ordering on both backends.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <vector>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navtool/planner.h"
#include "support/error.h"

namespace navcpp::navtool {
namespace {

NestSpec matmul_like(int nb) {
  NestSpec spec;
  spec.threads = nb;  // one carrier per block-row of A
  spec.steps = nb;    // block-columns of B/C
  spec.rows_independent = true;
  spec.start_rotatable = true;  // C(t,s) += A(t,:)B(:,s): rotation-safe
  spec.payload_bytes = 1024;
  return spec;
}

NestSpec sweep_like(int sweeps, int slabs) {
  NestSpec spec;
  spec.threads = sweeps;
  spec.steps = slabs;
  spec.rows_independent = false;
  spec.start_rotatable = false;  // each sweep walks the slabs in order
  spec.needs_previous_thread_same_step = true;
  return spec;
}

NestSpec serial_like(int t, int s) {
  NestSpec spec;
  spec.threads = t;
  spec.steps = s;
  return spec;  // no facts established: only DSC is legal
}

TEST(Planner, SelectsPhaseShiftForMatmulLikeNests) {
  const mm::Dist1D dist(12, 3);
  const Plan plan = plan_nest(matmul_like(12), dist);
  EXPECT_EQ(plan.transformation, Transformation::kPhaseShifted);
  EXPECT_EQ(plan.threads.size(), 12u);
  EXPECT_NE(plan.rationale.find("Phase-shifting Transformation"),
            std::string::npos);
}

TEST(Planner, SelectsPipeliningForSweepChains) {
  const mm::Dist1D dist(4, 4);
  const Plan plan = plan_nest(sweep_like(6, 4), dist);
  EXPECT_EQ(plan.transformation, Transformation::kPipelined);
  EXPECT_NE(plan.rationale.find("waitEvent"), std::string::npos);
  // Every thread but the first waits; every thread but the last signals.
  for (const auto& thread : plan.threads) {
    for (const auto& step : thread.steps) {
      EXPECT_EQ(step.wait_prev, thread.thread > 0);
      EXPECT_EQ(step.signal_done, thread.thread + 1 < 6);
    }
  }
}

TEST(Planner, FallsBackToDscWithoutDependenceFacts) {
  const mm::Dist1D dist(6, 3);
  const Plan plan = plan_nest(serial_like(4, 6), dist);
  EXPECT_EQ(plan.transformation, Transformation::kDsc);
  ASSERT_EQ(plan.threads.size(), 1u);
  EXPECT_EQ(plan.threads[0].steps.size(), 24u);  // t-major, all steps
  EXPECT_NE(plan.rationale.find("NOT applicable"), std::string::npos);
}

TEST(Planner, PhaseShiftItineraryMatchesFigure9) {
  // Figure 9: RowCarrier(mi) visits node((N-1-mi+mj) mod N).
  const int nb = 5;
  const mm::Dist1D dist(nb, 5);
  const Plan plan = plan_nest(matmul_like(nb), dist);
  for (int t = 0; t < nb; ++t) {
    const auto& steps = plan.threads[static_cast<std::size_t>(t)].steps;
    for (int mj = 0; mj < nb; ++mj) {
      EXPECT_EQ(steps[static_cast<std::size_t>(mj)].step,
                (nb - 1 - t + mj) % nb)
          << "t=" << t << " mj=" << mj;
    }
  }
}

TEST(Planner, RotatabilityWithoutIndependenceDoesNotPhaseShift) {
  NestSpec spec = sweep_like(4, 4);
  spec.start_rotatable = true;  // still pinned by the sweep chain
  const Plan plan = plan_nest(spec, mm::Dist1D(4, 2));
  EXPECT_EQ(plan.transformation, Transformation::kPipelined);
}

TEST(Planner, RejectsMismatchedDistribution) {
  EXPECT_THROW(plan_nest(matmul_like(12), mm::Dist1D(6, 3)),
               support::LogicError);
}

// --- interpreted execution --------------------------------------------------

/// Node variables for the interpreted matmul: the B and C block-column
/// windows owned by this PE, shared as a matrix pair.
struct MatmulNodeVars {
  const linalg::Matrix* a = nullptr;
  const linalg::Matrix* b = nullptr;
  linalg::Matrix* c = nullptr;
  int block = 0;
  int order = 0;
};

TEST(Interpreter, PlannedMatmulComputesTheProduct) {
  // 6x6 blocks of order 2 over 3 PEs: thread t computes C's block-row t;
  // S(t, s) is the row-block x column-block product, executed at owner(s).
  const int nb = 6, block = 2, pes = 3;
  const int order = nb * block;
  const linalg::Matrix a = linalg::Matrix::random(order, order, 55);
  const linalg::Matrix b = linalg::Matrix::random(order, order, 56);
  const linalg::Matrix want = linalg::multiply(a, b);

  const mm::Dist1D dist(nb, pes);
  NestSpec spec = matmul_like(nb);
  const Plan plan = plan_nest(spec, dist);
  ASSERT_EQ(plan.transformation, Transformation::kPhaseShifted);

  machine::SimMachine machine(pes);
  linalg::Matrix got(order, order);
  const StatementBody body = [](navp::Ctx& ctx, int t, int s) {
    auto& vars = ctx.node<MatmulNodeVars>();
    ctx.work("row-block", 1e-4, [&] {
      linalg::gemm_acc(
          vars.c->window(t * vars.block, s * vars.block, vars.block,
                         vars.block),
          vars.a->window(t * vars.block, 0, vars.block, vars.order),
          vars.b->window(0, s * vars.block, vars.order, vars.block));
    });
  };
  const auto setup = [&](navp::Runtime& rt) {
    for (int pe = 0; pe < pes; ++pe) {
      rt.node_store(pe).emplace<MatmulNodeVars>(
          MatmulNodeVars{&a, &b, &got, block, order});
    }
  };
  const ExecutionStats stats =
      execute_plan(machine, plan, spec, body, setup);
  EXPECT_LT(max_abs_diff(got, want), 1e-10);
  EXPECT_EQ(stats.agents, static_cast<std::uint64_t>(nb));
  EXPECT_GT(stats.hops, 0u);
}

TEST(Interpreter, PlannedSweepChainRespectsOrdering) {
  // The pipelined plan must execute S(t, s) only after S(t-1, s); record
  // the completion counts and verify monotonicity at every step.
  const int sweeps = 5, slabs = 4;
  const mm::Dist1D dist(slabs, slabs);
  NestSpec spec = sweep_like(sweeps, slabs);
  spec.step_cost_seconds = 1e-3;
  const Plan plan = plan_nest(spec, dist);

  machine::SimMachine machine(slabs);
  std::vector<int> completed(static_cast<std::size_t>(slabs), 0);
  bool order_ok = true;
  const StatementBody body = [&](navp::Ctx& ctx, int t, int s) {
    ctx.compute(1e-3, "sweep");
    if (completed[static_cast<std::size_t>(s)] != t) order_ok = false;
    completed[static_cast<std::size_t>(s)] = t + 1;
  };
  execute_plan(machine, plan, spec, body);
  EXPECT_TRUE(order_ok);
  for (int c : completed) EXPECT_EQ(c, sweeps);
}

TEST(Interpreter, WorksOnThreadedBackend) {
  const int sweeps = 4, slabs = 3;
  const mm::Dist1D dist(slabs, slabs);
  NestSpec spec = sweep_like(sweeps, slabs);
  const Plan plan = plan_nest(spec, dist);

  machine::ThreadedMachine machine(slabs);
  machine.set_stall_timeout(5.0);
  std::vector<int> completed(static_cast<std::size_t>(slabs), 0);
  std::mutex mu;  // bodies for the same s are ordered, but keep it simple
  const StatementBody body = [&](navp::Ctx&, int, int s) {
    std::lock_guard<std::mutex> lock(mu);
    ++completed[static_cast<std::size_t>(s)];
  };
  execute_plan(machine, plan, spec, body);
  for (int c : completed) EXPECT_EQ(c, sweeps);
}

TEST(Interpreter, PlannedTransformationsImproveInOrder) {
  // Timing sanity on the simulated testbed: for a matmul-like nest, the
  // planner's phase-shifted plan beats a forced-pipelined plan, which
  // beats a forced-DSC plan (the incremental-improvement property, now
  // derived mechanically).
  const int nb = 12, pes = 3;
  const mm::Dist1D dist(nb, pes);
  NestSpec spec = matmul_like(nb);
  spec.step_cost_seconds = 0.05;
  spec.payload_bytes = 1 << 16;

  const StatementBody body = [&](navp::Ctx& ctx, int, int) {
    ctx.compute(0.05, "S");
  };
  auto run = [&](const Plan& plan) {
    machine::SimMachine machine(pes);
    return execute_plan(machine, plan, spec, body).seconds;
  };

  const Plan phase = plan_nest(spec, dist);
  NestSpec pipe_spec = spec;
  pipe_spec.start_rotatable = false;  // forbid phase shifting
  const Plan pipe = plan_nest(pipe_spec, dist);
  NestSpec dsc_spec = spec;
  dsc_spec.rows_independent = false;  // forbid pipelining too
  dsc_spec.start_rotatable = false;
  const Plan dsc = plan_nest(dsc_spec, dist);

  ASSERT_EQ(phase.transformation, Transformation::kPhaseShifted);
  ASSERT_EQ(pipe.transformation, Transformation::kPipelined);
  ASSERT_EQ(dsc.transformation, Transformation::kDsc);
  const double t_phase = run(phase);
  const double t_pipe = run(pipe);
  const double t_dsc = run(dsc);
  EXPECT_LT(t_phase, t_pipe);
  EXPECT_LT(t_pipe, t_dsc);
  EXPECT_GT(t_dsc / t_phase, 2.0);  // near 3x on 3 PEs
}

}  // namespace
}  // namespace navcpp::navtool
