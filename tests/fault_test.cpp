// Tests for the fault-injection stack: FaultMachine (drop/dup/corrupt +
// crash), net::ReliableChannel (ack/retransmit/backoff, exactly-once
// in-order delivery), checkpoint-based agent recovery, and the fault
// workload suite that ties them together.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/fault_suite.h"
#include "harness/workloads.h"
#include "machine/fault_machine.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "minimpi/world.h"
#include "navp/checkpoint.h"
#include "navp/event.h"
#include "navp/runtime.h"
#include "net/reliable_channel.h"
#include "obs/metrics.h"
#include "support/bytebuffer.h"
#include "support/error.h"

namespace navcpp {
namespace {

machine::FaultPlan plan_with(std::uint64_t seed, double drop, double dup,
                             double corrupt) {
  machine::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = drop;
  plan.duplicate_prob = dup;
  plan.corrupt_prob = corrupt;
  return plan;
}

/// Send `count` numbered payloads 0->1 through a ReliableChannel over a
/// FaultMachine and return the order they were released at the receiver.
std::vector<int> pump_channel(const machine::FaultPlan& plan, int count,
                              std::size_t bytes,
                              net::ChannelStats* stats_out) {
  machine::SimMachine sim(2);
  machine::FaultMachine fault(sim, plan);
  net::ReliableChannel channel(fault, &fault, fault.reliable_config());
  std::vector<int> released;
  for (int i = 0; i < count; ++i) {
    channel.send(0, 1, bytes, [&released, i] { released.push_back(i); });
  }
  // No task accounting: the run completes when the event queue (deliveries,
  // acks, retransmit timers) drains.
  fault.run();
  if (stats_out != nullptr) *stats_out = channel.stats(0, 1);
  return released;
}

TEST(ReliableChannel, HeavyDropDeliversInOrderExactlyOnce) {
  net::ChannelStats stats;
  const std::vector<int> got =
      pump_channel(plan_with(11, 0.4, 0.0, 0.0), 50, 100, &stats);
  ASSERT_EQ(got.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_EQ(stats.delivered, 50u);
  EXPECT_EQ(stats.acked, 50u);
  EXPECT_EQ(stats.unacked, 0u);
  EXPECT_GT(stats.retransmits, 0u) << "40% drop must force retransmission";
}

TEST(ReliableChannel, DuplicatesDiscardedExactlyOnce) {
  net::ChannelStats stats;
  const std::vector<int> got =
      pump_channel(plan_with(12, 0.0, 0.5, 0.0), 40, 100, &stats);
  ASSERT_EQ(got.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_EQ(stats.delivered, 40u);
  EXPECT_GT(stats.dups_discarded, 0u);
}

TEST(ReliableChannel, CorruptFramesDiscardedAndRetransmitted) {
  net::ChannelStats stats;
  const std::vector<int> got =
      pump_channel(plan_with(13, 0.0, 0.0, 0.5), 40, 100, &stats);
  ASSERT_EQ(got.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_GT(stats.corrupt_discarded, 0u);
  EXPECT_GT(stats.retransmits, 0u);
}

TEST(ReliableChannel, ZeroByteMessagesSurviveDrop) {
  net::ChannelStats stats;
  const std::vector<int> got =
      pump_channel(plan_with(14, 0.5, 0.1, 0.1), 20, 0, &stats);
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_EQ(stats.delivered, 20u);
}

TEST(ReliableChannel, LocalTrafficBypassesProtocolAndFaults) {
  machine::SimMachine sim(2);
  machine::FaultMachine fault(sim, plan_with(15, 1.0, 1.0, 1.0));
  net::ReliableChannel channel(fault, &fault, fault.reliable_config());
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    channel.send(1, 1, 64, [&delivered] { ++delivered; });
  }
  fault.run();
  EXPECT_EQ(delivered, 10) << "src == dst must never be faulted";
  EXPECT_EQ(fault.frames_dropped(), 0u);
  EXPECT_EQ(fault.frames_duplicated(), 0u);
  EXPECT_EQ(channel.stats(1, 1).sent, 0u)
      << "local traffic must not enter the protocol";
}

TEST(FaultMachine, SameSeedReplaysBitIdentically) {
  auto run_once = [](std::string* trace) {
    net::ChannelStats stats;
    const std::vector<int> got =
        pump_channel(plan_with(99, 0.3, 0.2, 0.1), 30, 64, &stats);
    machine::SimMachine sim(2);
    machine::FaultMachine fault(sim, plan_with(99, 0.3, 0.2, 0.1));
    net::ReliableChannel channel(fault, &fault, fault.reliable_config());
    for (int i = 0; i < 30; ++i) channel.send(0, 1, 64, [] {});
    fault.run();
    *trace = fault.trace_summary();
    return stats;
  };
  std::string trace_a, trace_b;
  const net::ChannelStats a = run_once(&trace_a);
  const net::ChannelStats b = run_once(&trace_b);
  EXPECT_EQ(trace_a, trace_b) << "same seed must replay the same fault tape";
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.dups_discarded, b.dups_discarded);
  EXPECT_EQ(a.corrupt_discarded, b.corrupt_discarded);
}

TEST(FaultMachine, RejectsInvalidPlans) {
  machine::SimMachine sim(2);
  EXPECT_THROW(machine::FaultMachine(sim, plan_with(1, -0.1, 0, 0)),
               support::Error);
  EXPECT_THROW(machine::FaultMachine(sim, plan_with(1, 0, 1.5, 0)),
               support::Error);
  machine::FaultPlan bad_crash;
  bad_crash.crashes.push_back(machine::CrashSpec{7, 1.0, -1.0});
  EXPECT_THROW(machine::FaultMachine(sim, bad_crash), support::Error);
  // A hop-count trigger without a threshold can never fire: reject it at
  // construction rather than silently arming a dead spec.
  machine::FaultPlan no_threshold;
  machine::CrashSpec hop_spec;
  hop_spec.pe = 1;
  hop_spec.trigger = machine::CrashSpec::Trigger::kHopCount;
  no_threshold.crashes.push_back(hop_spec);
  EXPECT_THROW(machine::FaultMachine(sim, no_threshold), support::Error);
}

// Regression for the trigger-mode motivation: on a real-time backend,
// "crash at t engine-seconds" lands at an arbitrary point of the program's
// progress, so crash plans anchor to the cumulative transmit() count
// instead.  The threshold must be exact — hop 4 of 5 must not fire it,
// cumulative hop 5 must, including across run() boundaries.
TEST(FaultMachine, HopCountTriggerFiresAtExactThresholdOnRealTimeBackend) {
  machine::ThreadedMachine inner(2);
  machine::FaultPlan plan;
  machine::CrashSpec spec;
  spec.pe = 1;
  spec.restart_after = 0.005;
  spec.trigger = machine::CrashSpec::Trigger::kHopCount;
  spec.after_hops = 5;
  plan.crashes.push_back(spec);
  machine::FaultMachine fault(inner, plan);

  std::atomic<int> delivered{0};
  fault.task_started();
  fault.post(0, [&] {
    for (int i = 0; i < 4; ++i) {
      fault.transmit(0, 1, 8, [&] {
        if (delivered.fetch_add(1) + 1 == 4) fault.task_finished();
      });
    }
  });
  fault.run();
  EXPECT_EQ(fault.crashes_fired(), 0u) << "4 hops is below the threshold";
  EXPECT_EQ(delivered.load(), 4);

  // Deliveries are unreliable once the crash fires (post-crash transmits go
  // to limbo), so the second run is held open by a timer instead.
  fault.task_started();
  fault.post(0, [&] {
    for (int i = 0; i < 3; ++i) fault.transmit(0, 1, 8, [] {});
    fault.post_after(0, 0.05, [&] { fault.task_finished(); });
  });
  fault.run();
  EXPECT_EQ(fault.crashes_fired(), 1u) << "5th cumulative hop trips it";
}

TEST(FaultMachine, WallClockTriggerFiresOncePastElapsedRunTime) {
  machine::ThreadedMachine inner(2);
  machine::FaultPlan plan;
  machine::CrashSpec spec;
  spec.pe = 1;
  spec.at = 0.05;  // wall seconds into run(), checked at transmit granularity
  spec.trigger = machine::CrashSpec::Trigger::kWallClock;
  plan.crashes.push_back(spec);
  machine::FaultMachine fault(inner, plan);

  // A 10 ms transmit metronome: traffic keeps flowing well past the 50 ms
  // mark, so exactly one crash must fire mid-stream.  `rounds` only ever
  // moves on PE 0's worker thread.
  int rounds = 0;
  std::function<void()> tick = [&] {
    fault.transmit(0, 1, 8, [] {});
    if (++rounds < 12) {
      fault.post_after(0, 0.01, [&] { tick(); });
    } else {
      fault.task_finished();
    }
  };
  fault.task_started();
  fault.post(0, [&] { tick(); });
  fault.run();
  EXPECT_EQ(fault.crashes_fired(), 1u);
  EXPECT_EQ(rounds, 12);
}

// --- runtime integration ---------------------------------------------------

navp::Mission faulty_ping_pong(minimpi::Comm comm,
                               std::vector<double>* out) {
  if (comm.rank() == 0) {
    comm.send(1, 7, {1.0, 2.0, 3.0});
    minimpi::Message reply = co_await comm.recv(1, 8);
    *out = reply.data;
  } else {
    minimpi::Message msg = co_await comm.recv(0, 7);
    for (auto& x : msg.data) x *= 10.0;
    comm.send(0, 8, std::move(msg.data));
  }
}

// The runtime must find the FaultMachine in the decorator chain, install a
// ReliableChannel, and route mini-MPI sends through it — message payloads
// arrive intact and exactly once (no leftover mailbox entries, no
// unconsumed mailbox signals) despite heavy injected faults.
TEST(Runtime, MpiTrafficSurvivesInjectedFaults) {
  machine::SimMachine sim(2);
  machine::FaultMachine fault(sim, plan_with(21, 0.3, 0.2, 0.1));
  navp::Runtime rt(fault);
  ASSERT_NE(rt.reliable(), nullptr)
      << "runtime must auto-install the reliability layer";
  minimpi::World world(rt);
  std::vector<double> out;
  world.launch(faulty_ping_pong, &out);
  rt.run();
  EXPECT_EQ(out, (std::vector<double>{10.0, 20.0, 30.0}));
  EXPECT_FALSE(world.has_leftover_messages());
  EXPECT_EQ(rt.unconsumed_signals(), 0u)
      << "duplicate frame made it through: an event was signaled twice";
  EXPECT_GT(fault.frames_dropped() + fault.frames_duplicated() +
                fault.frames_corrupted(),
            0u)
      << "test vacuous: nothing was injected";
}

navp::Mission forever_waiter(navp::Ctx ctx) {
  co_await ctx.wait_event(navp::EventKey{42, 0, 0});
}

TEST(Runtime, DeadlockReportIncludesChannelCounters) {
  machine::SimMachine sim(2);
  machine::FaultMachine fault(sim, plan_with(22, 0.1, 0.0, 0.0));
  navp::Runtime rt(fault);
  rt.inject(0, "parked", forever_waiter);
  try {
    rt.run();
    FAIL() << "expected DeadlockError";
  } catch (const support::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("parked"), std::string::npos) << what;
    EXPECT_NE(what.find("reliable channels"), std::string::npos) << what;
  }
}

// EventTable::signal is a counting semaphore: double delivery of a signal
// would bank a second count and break conservation.  Verified directly
// here; Runtime.MpiTrafficSurvivesInjectedFaults checks the reliability
// layer never lets that double delivery happen.
TEST(EventTable, SignalsBankAndConsumeAsCounts) {
  navp::EventTable table;
  const navp::EventKey key{3, 1, 2};
  EXPECT_FALSE(table.try_consume(key));
  (void)table.signal(key);
  (void)table.signal(key);
  EXPECT_EQ(table.pending_signals(key), 2u);
  EXPECT_TRUE(table.try_consume(key));
  EXPECT_TRUE(table.try_consume(key));
  EXPECT_FALSE(table.try_consume(key));
  EXPECT_EQ(table.total_pending_signals(), 0u);
}

TEST(EventTable, BankedRoundTripsThroughSetBanked) {
  navp::EventTable table;
  (void)table.signal(navp::EventKey{1, 0, 0});
  (void)table.signal(navp::EventKey{1, 0, 0});
  (void)table.signal(navp::EventKey{2, 5, 6});
  const auto banked = table.banked();
  navp::EventTable restored;
  for (const auto& [key, count] : banked) restored.set_banked(key, count);
  EXPECT_EQ(restored.banked(), banked);
  EXPECT_EQ(restored.pending_signals(navp::EventKey{1, 0, 0}), 2u);
}

// --- checkpointing ---------------------------------------------------------

struct CounterNode {
  std::int64_t value = 0;
};

TEST(Checkpointer, RoundTripsEventsAndNodeState) {
  machine::SimMachine sim(2);
  navp::Runtime rt(sim);
  rt.node_store(1).emplace<CounterNode>().value = 41;
  rt.pre_signal(1, navp::EventKey{9, 0, 0});
  rt.pre_signal(1, navp::EventKey{9, 0, 0});

  navp::Checkpointer cp(rt);
  cp.set_node_state_hooks(
      [&rt](int pe, support::ByteBuffer& out) {
        out.put<std::int64_t>(rt.node_store(pe).get<CounterNode>().value);
      },
      [&rt](int pe, support::ByteBuffer& in) {
        rt.node_store(pe).get<CounterNode>().value = in.get<std::int64_t>();
      });
  EXPECT_FALSE(cp.has_checkpoint(1));
  (void)cp.take(1);
  EXPECT_TRUE(cp.has_checkpoint(1));

  // Diverge, then roll back.
  rt.node_store(1).get<CounterNode>().value = -1;
  rt.events(1).clear();
  (void)rt.events(1).signal(navp::EventKey{8, 8, 8});
  EXPECT_EQ(cp.restore(1), 0) << "no recoverable agents in this snapshot";
  EXPECT_EQ(rt.node_store(1).get<CounterNode>().value, 41);
  EXPECT_EQ(rt.events(1).pending_signals(navp::EventKey{9, 0, 0}), 2u);
  EXPECT_EQ(rt.events(1).pending_signals(navp::EventKey{8, 8, 8}), 0u);
}

TEST(Checkpointer, RejectsForeignSnapshots) {
  machine::SimMachine sim(2);
  navp::Runtime rt(sim);
  navp::Checkpointer cp(rt);
  EXPECT_THROW((void)cp.restore(0), support::Error) << "nothing taken yet";
  (void)cp.take(0);
  support::ByteBuffer snapshot = cp.take(0);
  EXPECT_THROW((void)cp.restore_from(1, snapshot), support::Error)
      << "snapshot is for PE 0";
  support::ByteBuffer garbage;
  garbage.put<std::uint32_t>(0xdeadbeef);
  EXPECT_THROW((void)cp.restore_from(0, garbage), support::Error);
}

// --- the fault suite -------------------------------------------------------

// The ISSUE's acceptance plan: drop 5%, duplicate 2%, corrupt 1%.  Each
// program's result must be bit-identical to its fault-free run.  The full
// 32-seed sweep runs in CI; a handful of seeds here keeps ctest quick while
// still crossing every program and the recovery scenario.
TEST(FaultSuite, ProgramsBitIdenticalUnderFaults) {
  const auto report = harness::fault_sweep(
      /*first_seed=*/1, /*num_seeds=*/2,
      plan_with(0, 0.05, 0.02, 0.01), /*verbose=*/false);
  EXPECT_FALSE(report.failed)
      << report.first_failure.name << " seed " << report.first_failure.seed
      << ": " << report.first_failure.detail;
  EXPECT_EQ(report.cases_run,
            2 * static_cast<int>(harness::fault_case_names().size()));
}

TEST(FaultSuite, RecoveryRingSurvivesCrashAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto r = harness::run_fault_case(
        "recovery/ring", plan_with(seed, 0.02, 0.01, 0.01));
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.detail;
    EXPECT_GE(r.crashes_fired, 1u) << "seed " << seed;
    EXPECT_GE(r.agents_recovered, 1u) << "seed " << seed;
  }
}

TEST(FaultSuite, CaseResultsAreDeterministic) {
  const auto plan = plan_with(5, 0.05, 0.02, 0.01);
  const auto a = harness::run_fault_case("recovery/ring", plan);
  const auto b = harness::run_fault_case("recovery/ring", plan);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.crashes_fired, b.crashes_fired);
  EXPECT_EQ(a.agents_recovered, b.agents_recovered);
}

TEST(FaultSuite, UnknownCaseThrows) {
  EXPECT_THROW(
      (void)harness::run_fault_case("mm/notacase", machine::FaultPlan{}),
      support::ConfigError);
  EXPECT_THROW((void)harness::fault_sweep(1, 1, machine::FaultPlan{}, false,
                                          "nomatch"),
               support::Error);
}

TEST(ReliableChannel, ResetStatsClearsCountersButKeepsProtocolState) {
  machine::SimMachine sim(2);
  machine::FaultMachine fault(sim, plan_with(31, 0.4, 0.3, 0.3));
  net::ReliableChannel channel(fault, &fault, fault.reliable_config());
  std::vector<int> released;
  for (int i = 0; i < 30; ++i) {
    channel.send(0, 1, 64, [&released, i] { released.push_back(i); });
  }
  fault.run();
  const net::ChannelStats before = channel.stats(0, 1);
  ASSERT_EQ(before.delivered, 30u);
  ASSERT_GT(before.retransmits, 0u);
  ASSERT_GT(before.dups_discarded + before.corrupt_discarded, 0u);

  channel.reset_stats();
  const net::ChannelStats after = channel.stats(0, 1);
  EXPECT_EQ(after.retransmits, 0u);
  EXPECT_EQ(after.delivered, 0u);
  EXPECT_EQ(after.dups_discarded, 0u);
  EXPECT_EQ(after.corrupt_discarded, 0u);
  EXPECT_EQ(after.blackholed, 0u);
  // Protocol state is NOT statistics: wiping it would desynchronize the
  // sliding window from the receiver's cumulative ack.
  EXPECT_EQ(after.sent, before.sent);
  EXPECT_EQ(after.acked, before.acked);
  EXPECT_EQ(after.unacked, 0u);

  // The channel keeps delivering in order after the wipe.
  for (int i = 30; i < 40; ++i) {
    channel.send(0, 1, 64, [&released, i] { released.push_back(i); });
  }
  fault.run();
  ASSERT_EQ(released.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(released[static_cast<size_t>(i)], i);
  EXPECT_EQ(channel.stats(0, 1).delivered, 10u)
      << "post-reset stats must count only the second batch";
}

// Regression for hop-traffic double counting: retransmitted frames used to
// inflate the per-run "navp.hop_bytes" / "navp.hop_arrivals" counters, so a
// faulty link made agent traffic look heavier than the program actually is.
// Application-level hop stats must be identical with and without faults.
TEST(FaultSuite, HopStatsMatchFaultFreeUnderRetransmission) {
  const std::string name = "mm/phase1d";
  auto run = [&](bool faulted) {
    machine::SimMachine sim(harness::workload_pe_count(name),
                            harness::workload_link(name));
    obs::Registry registry;
    obs::MetricsScope scope(&registry);
    std::vector<double> got;
    if (faulted) {
      machine::FaultMachine faults(sim, plan_with(21, 0.2, 0.1, 0.1));
      got = harness::run_workload(name, faults);
    } else {
      got = harness::run_workload(name, sim);
    }
    EXPECT_TRUE(harness::check_workload(name, got).ok);
    return registry.snapshot();
  };
  const obs::Snapshot clean = run(false);
  const obs::Snapshot faulty = run(true);

  ASSERT_GT(faulty.counter_or("net.reliable.retransmits"), 0u)
      << "the faulty run must actually exercise retransmission";
  EXPECT_EQ(faulty.counter_or("navp.hops"), clean.counter_or("navp.hops"));
  EXPECT_EQ(faulty.counter_or("navp.hop_bytes"),
            clean.counter_or("navp.hop_bytes"));
  for (int pe = 0; pe < harness::workload_pe_count(name); ++pe) {
    const std::string key = "navp.hop_arrivals{pe=" + std::to_string(pe) + "}";
    EXPECT_EQ(faulty.counter_or(key), clean.counter_or(key)) << key;
  }
  // Wire traffic, by contrast, legitimately grows: retransmits and protocol
  // frames are real bytes on the network.
  EXPECT_GT(faulty.counter_or("net.bytes"), clean.counter_or("net.bytes"));
}

}  // namespace
}  // namespace navcpp
