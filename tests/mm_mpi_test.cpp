// Correctness of the SPMD comparators (Gentleman, Cannon, SUMMA, doall)
// against the dense reference product, plus shape checks on the simulated
// testbed.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "linalg/gemm.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "mm/doall_mm.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"
#include "mm/summa_mm.h"
#include "support/error.h"

namespace navcpp::mm {
namespace {

using linalg::BlockGrid;
using linalg::Matrix;
using linalg::PhantomStorage;
using linalg::RealStorage;

enum class Algo { kGentleman, kCannon, kSumma, kDoall };

struct CaseMpi {
  std::string backend;
  Algo algo;
  int order;
  int block;
  int grid;
};

std::unique_ptr<machine::Engine> make_engine(const std::string& backend,
                                             int pes,
                                             const perfmodel::Testbed& tb) {
  if (backend == "sim") {
    return std::make_unique<machine::SimMachine>(pes, tb.lan);
  }
  auto m = std::make_unique<machine::ThreadedMachine>(pes);
  m->set_stall_timeout(10.0);
  return m;
}

template <class Storage>
MmStats run_algo(machine::Engine& engine, const MmConfig& cfg, Algo algo,
                 const BlockGrid<Storage>& a, const BlockGrid<Storage>& b,
                 BlockGrid<Storage>& c) {
  switch (algo) {
    case Algo::kGentleman:
      return gentleman_mm(engine, cfg, StaggerMode::kDirect, a, b, c);
    case Algo::kCannon:
      return gentleman_mm(engine, cfg, StaggerMode::kStepwise, a, b, c);
    case Algo::kSumma:
      return summa_mm(engine, cfg, a, b, c);
    case Algo::kDoall:
      return doall_mm(engine, cfg, a, b, c);
  }
  NAVCPP_CHECK(false, "unknown algorithm");
}

class MpiCorrectness : public ::testing::TestWithParam<CaseMpi> {};

TEST_P(MpiCorrectness, MatchesDenseProduct) {
  const auto& p = GetParam();
  const Matrix a = Matrix::random(p.order, p.order, 41);
  const Matrix b = Matrix::random(p.order, p.order, 42);
  MmConfig cfg;
  cfg.order = p.order;
  cfg.block_order = p.block;
  auto engine = make_engine(p.backend, p.grid * p.grid, cfg.testbed);

  auto ga = linalg::to_blocks(a, p.block);
  auto gb = linalg::to_blocks(b, p.block);
  BlockGrid<RealStorage> gc(p.order, p.block);
  const MmStats stats = run_algo(*engine, cfg, p.algo, ga, gb, gc);

  EXPECT_LT(max_abs_diff(linalg::from_blocks(gc), linalg::multiply(a, b)),
            1e-9);
  if (p.backend == "sim") {
    EXPECT_GT(stats.seconds, 0.0);
  }
}

std::string case_name(const ::testing::TestParamInfo<CaseMpi>& info) {
  const auto& p = info.param;
  std::string a = p.algo == Algo::kGentleman ? "gentleman"
                  : p.algo == Algo::kCannon  ? "cannon"
                  : p.algo == Algo::kSumma   ? "summa"
                                             : "doall";
  return p.backend + "_" + a + "_n" + std::to_string(p.order) + "b" +
         std::to_string(p.block) + "g" + std::to_string(p.grid);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MpiCorrectness,
    ::testing::Values(
        CaseMpi{"sim", Algo::kGentleman, 24, 4, 3},
        CaseMpi{"sim", Algo::kGentleman, 16, 4, 2},
        CaseMpi{"sim", Algo::kGentleman, 32, 4, 4},
        CaseMpi{"sim", Algo::kGentleman, 12, 4, 1},
        CaseMpi{"sim", Algo::kCannon, 24, 4, 3},
        CaseMpi{"sim", Algo::kCannon, 16, 4, 2},
        CaseMpi{"sim", Algo::kCannon, 12, 4, 1},
        CaseMpi{"sim", Algo::kSumma, 24, 4, 3},
        CaseMpi{"sim", Algo::kSumma, 16, 4, 2},
        CaseMpi{"sim", Algo::kSumma, 40, 4, 5},
        CaseMpi{"sim", Algo::kDoall, 24, 4, 3},
        CaseMpi{"sim", Algo::kDoall, 16, 4, 2},
        CaseMpi{"threaded", Algo::kGentleman, 24, 4, 3},
        CaseMpi{"threaded", Algo::kCannon, 24, 4, 3},
        CaseMpi{"threaded", Algo::kSumma, 24, 4, 3},
        CaseMpi{"threaded", Algo::kDoall, 16, 4, 2}),
    case_name);

TEST(MpiMm, GentlemanAndCannonAgreeNumerically) {
  const Matrix a = Matrix::random(24, 24, 51);
  const Matrix b = Matrix::random(24, 24, 52);
  MmConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;
  auto ga = linalg::to_blocks(a, 4);
  auto gb = linalg::to_blocks(b, 4);
  BlockGrid<RealStorage> c1(24, 4), c2(24, 4);
  machine::SimMachine m1(9, cfg.testbed.lan), m2(9, cfg.testbed.lan);
  gentleman_mm(m1, cfg, StaggerMode::kDirect, ga, gb, c1);
  gentleman_mm(m2, cfg, StaggerMode::kStepwise, ga, gb, c2);
  EXPECT_EQ(linalg::from_blocks(c1), linalg::from_blocks(c2));
}

TEST(MpiMm, DirectStaggeringBeatsStepwise) {
  // Gentleman's single-step skew must be faster than Cannon's nb-1 rounds
  // of neighbor shifts (everything else is identical).
  MmConfig cfg;
  cfg.order = 1536;
  cfg.block_order = 128;
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c1(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c2(cfg.order, cfg.block_order);
  machine::SimMachine m1(9, cfg.testbed.lan), m2(9, cfg.testbed.lan);
  const double direct =
      gentleman_mm(m1, cfg, StaggerMode::kDirect, a, b, c1).seconds;
  const double stepwise =
      gentleman_mm(m2, cfg, StaggerMode::kStepwise, a, b, c2).seconds;
  EXPECT_LT(direct, stepwise);
}

TEST(MpiMm, PhantomTimingEqualsRealTiming) {
  MmConfig cfg;
  cfg.order = 24;
  cfg.block_order = 4;
  const Matrix a = Matrix::random(24, 24, 61);
  const Matrix b = Matrix::random(24, 24, 62);
  auto ga = linalg::to_blocks(a, 4);
  auto gb = linalg::to_blocks(b, 4);
  for (Algo algo : {Algo::kGentleman, Algo::kCannon, Algo::kSumma,
                    Algo::kDoall}) {
    machine::SimMachine mr(9, cfg.testbed.lan), mp(9, cfg.testbed.lan);
    BlockGrid<RealStorage> cr(24, 4);
    BlockGrid<PhantomStorage> pa(24, 4), pb(24, 4), pc(24, 4);
    const double real = run_algo(mr, cfg, algo, ga, gb, cr).seconds;
    const double phantom = run_algo(mp, cfg, algo, pa, pb, pc).seconds;
    EXPECT_DOUBLE_EQ(real, phantom);
  }
}

TEST(MpiMm, Table3ShapeGentlemanBetweenDscAndPipeline) {
  // Table 3 ordering at N=2048, 2x2 PEs: 2D DSC (50.59) ≈ MPI (50.99) >
  // 2D pipeline (42.61) > 2D phase (41.54).  We assert the robust part:
  // Gentleman lands above phase and pipeline, near DSC, and everything
  // beats sequential/4 ... i.e. speedups in (3.0, 4.0).
  MmConfig cfg;
  cfg.order = 2048;
  cfg.block_order = 128;
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  auto run2d = [&](Navp2dVariant v) {
    machine::SimMachine m(4, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    return navp_mm_2d(m, cfg, v, a, b, c).seconds;
  };
  machine::SimMachine mg(4, cfg.testbed.lan);
  BlockGrid<PhantomStorage> cg(cfg.order, cfg.block_order);
  const double gent =
      gentleman_mm(mg, cfg, StaggerMode::kDirect, a, b, cg).seconds;
  const double pipe = run2d(Navp2dVariant::kPipelined);
  const double phase = run2d(Navp2dVariant::kPhaseShifted);
  EXPECT_GT(gent, pipe);
  EXPECT_GT(gent, phase);
  const double seq = sequential_mm_seconds_in_core(cfg);
  EXPECT_GT(seq / phase, 3.0);
  EXPECT_LT(seq / phase, 4.0);
  EXPECT_GT(seq / gent, 2.7);
}

}  // namespace
}  // namespace navcpp::mm
