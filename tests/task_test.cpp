// Tests for navp::Task<T> — the awaitable sub-coroutine used to compose
// agent logic (and the substrate of mini-MPI's recv/barrier).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "navp/task.h"
#include "support/error.h"

namespace navcpp::navp {
namespace {

Task<int> forty_two(Ctx) { co_return 42; }

Task<int> add(Ctx ctx, int a, int b) {
  const int x = co_await forty_two(ctx);
  co_return a + b + x - 42;
}

Task<void> noop(Ctx) { co_return; }

Task<std::string> concat(Ctx ctx, std::string base) {
  co_await noop(ctx);
  co_return base + "!";
}

Mission uses_tasks(Ctx ctx, std::vector<std::string>* out) {
  const int sum = co_await add(ctx, 1, 2);
  const std::string s = co_await concat(ctx, "hi");
  out->push_back(s + std::to_string(sum));
}

TEST(Task, ValuesPropagateThroughNestedAwaits) {
  machine::SimMachine m(1);
  Runtime rt(m);
  std::vector<std::string> out;
  rt.inject(0, "agent", uses_tasks, &out);
  rt.run();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "hi!3");
}

Task<int> thrower(Ctx) {
  throw support::ConfigError("task exploded");
  co_return 0;  // unreachable
}

Mission catches_task_error(Ctx ctx, bool* caught) {
  try {
    (void)co_await thrower(ctx);
  } catch (const support::ConfigError&) {
    *caught = true;
  }
}

TEST(Task, ExceptionsResurfaceAtCallersAwait) {
  machine::SimMachine m(1);
  Runtime rt(m);
  bool caught = false;
  rt.inject(0, "agent", catches_task_error, &caught);
  rt.run();
  EXPECT_TRUE(caught);
}

Mission propagates_task_error(Ctx ctx) {
  (void)co_await thrower(ctx);
}

TEST(Task, UncaughtTaskErrorFailsTheRun) {
  machine::SimMachine m(1);
  Runtime rt(m);
  rt.inject(0, "agent", propagates_task_error);
  EXPECT_THROW(rt.run(), support::ConfigError);
}

// A task that migrates: the sub-coroutine hops and waits on events; its
// caller resumes transparently afterwards.
Task<int> roaming_fetch(Ctx ctx, int pe) {
  co_await ctx.hop(pe, 16);
  co_return ctx.here() * 100;
}

Mission roams_via_task(Ctx ctx, std::vector<int>* got) {
  for (int pe = 0; pe < ctx.pe_count(); ++pe) {
    got->push_back(co_await roaming_fetch(ctx, pe));
  }
  // After the last fetch the *agent* is now resident on the last PE —
  // Task hops move the shared AgentState, exactly like inline code.
  got->push_back(ctx.here());
}

TEST(Task, TasksMayHopAndTheAgentMovesWithThem) {
  machine::SimMachine m(3);
  Runtime rt(m);
  std::vector<int> got;
  rt.inject(0, "roamer", roams_via_task, &got);
  rt.run();
  EXPECT_EQ(got, (std::vector<int>{0, 100, 200, 2}));
}

Task<int> waits_for_event(Ctx ctx) {
  co_await ctx.wait_event(EventKey{5, 0, 0});
  co_return 7;
}

Mission task_waiter(Ctx ctx, int* got) {
  *got = co_await waits_for_event(ctx);
}

Mission task_signaler(Ctx ctx) {
  ctx.signal_event(EventKey{5, 0, 0});
  co_return;
}

TEST(Task, TasksMayBlockOnEvents) {
  machine::SimMachine m(1);
  Runtime rt(m);
  int got = 0;
  rt.inject(0, "waiter", task_waiter, &got);
  rt.inject(0, "signaler", task_signaler);
  rt.run();
  EXPECT_EQ(got, 7);
}

TEST(Task, BlockedSubCoroutineIsReclaimedOnDeadlockTeardown) {
  // The agent deadlocks *inside a Task*; the run must report the deadlock
  // and tear down the whole coroutine stack without leaks or crashes
  // (destruction goes through the agent's root frame).
  machine::SimMachine m(1);
  Runtime rt(m);
  int got = 0;
  rt.inject(0, "stuck", task_waiter, &got);
  EXPECT_THROW(rt.run(), support::DeadlockError);
  EXPECT_EQ(got, 0);
}

Task<std::unique_ptr<int>> moves_value(Ctx) {
  co_return std::make_unique<int>(9);
}

Mission move_only_user(Ctx ctx, int* got) {
  auto p = co_await moves_value(ctx);
  *got = *p;
}

TEST(Task, MoveOnlyResults) {
  machine::SimMachine m(1);
  Runtime rt(m);
  int got = 0;
  rt.inject(0, "agent", move_only_user, &got);
  rt.run();
  EXPECT_EQ(got, 9);
}

TEST(Task, WorksOnThreadedBackendToo) {
  machine::ThreadedMachine m(3);
  m.set_stall_timeout(5.0);
  Runtime rt(m);
  std::vector<int> got;
  rt.inject(0, "roamer", roams_via_task, &got);
  rt.run();
  EXPECT_EQ(got, (std::vector<int>{0, 100, 200, 2}));
}

}  // namespace
}  // namespace navcpp::navp
