// Tests for the ChaosMachine schedule fuzzer: legality (programs stay
// correct under perturbation), determinism (same seed => byte-identical
// schedule), and the chaos sweep harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "harness/chaos_suite.h"
#include "linalg/gemm.h"
#include "machine/chaos_machine.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "navp/runtime.h"
#include "support/error.h"

namespace navcpp {
namespace {

machine::ChaosConfig seeded(std::uint64_t seed) {
  machine::ChaosConfig cfg;
  cfg.seed = seed;
  return cfg;
}

// --- mechanics ------------------------------------------------------------

TEST(ChaosMachine, PassthroughWhenProbabilitiesAreZero) {
  machine::SimMachine sim(2);
  machine::ChaosConfig cfg;
  cfg.transmit_delay_prob = 0.0;
  cfg.post_jitter_prob = 0.0;
  machine::ChaosMachine chaos(sim, cfg);
  std::vector<int> order;
  chaos.post(0, [&] { order.push_back(1); });
  chaos.post(0, [&] { order.push_back(2); });
  chaos.transmit(0, 1, 64, [&] { order.push_back(3); });
  chaos.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(chaos.decisions(), 3u);
  EXPECT_EQ(chaos.perturbations(), 0u);
}

net::LinkParams instant_link() {
  net::LinkParams p;
  p.send_overhead = 0.0;
  p.recv_overhead = 0.0;
  p.latency = 0.0;
  p.bandwidth = 1e12;
  p.local_delivery = 0.0;
  return p;
}

TEST(ChaosMachine, DeferredDeliverySlipsBehindReadyActions) {
  // With delay probability 1, a transmit delivery must be re-posted at
  // least once, so an action posted to the destination *after* the message
  // was sent still runs before the delivery (with an instant link both
  // would otherwise execute in schedule order: delivery first).
  machine::SimMachine sim(2, instant_link());
  machine::ChaosConfig cfg;
  cfg.transmit_delay_prob = 1.0;
  cfg.max_transmit_defer = 1;
  cfg.post_jitter_prob = 0.0;
  machine::ChaosMachine chaos(sim, cfg);
  std::vector<int> order;
  chaos.transmit(0, 1, 64, [&] { order.push_back(1); });
  chaos.post(1, [&] { order.push_back(2); });
  chaos.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(chaos.perturbations(), 1u);
}

TEST(ChaosMachine, SameChannelDeliveriesNeverOvertake) {
  // Messages on one (src, dst) pair must execute in send order no matter
  // how individual deliveries are deferred — real links are non-overtaking,
  // and the pipelined MM programs' block pairing depends on it.  Messages
  // from a different source may still slip in between.
  machine::SimMachine sim(3, instant_link());
  machine::ChaosConfig cfg;
  cfg.transmit_delay_prob = 1.0;  // every delivery deferred by 1..4
  cfg.max_transmit_defer = 4;
  cfg.post_jitter_prob = 0.0;
  machine::ChaosMachine chaos(sim, cfg);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    chaos.transmit(0, 2, 64, [&order, i] { order.push_back(i); });
    chaos.transmit(1, 2, 64, [&order, i] { order.push_back(100 + i); });
  }
  chaos.run();
  ASSERT_EQ(order.size(), 12u);
  std::vector<int> from0;
  std::vector<int> from1;
  for (int v : order) (v < 100 ? from0 : from1).push_back(v);
  EXPECT_EQ(from0, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(from1, (std::vector<int>{100, 101, 102, 103, 104, 105}));
}

TEST(ChaosMachine, ShuffleReordersSamePePosts) {
  machine::SimMachine sim(1);
  machine::ChaosConfig cfg;
  cfg.transmit_delay_prob = 0.0;
  cfg.post_jitter_prob = 0.0;
  cfg.shuffle_same_pe = true;
  cfg.shuffle_prob = 1.0;
  cfg.max_post_defer = 3;
  // Deterministic given the seed: some permutation of 0..7 must come out,
  // and every posted action must still run exactly once.
  machine::ChaosMachine chaos(sim, cfg);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    chaos.post(0, [&order, i] { order.push_back(i); });
  }
  chaos.run();
  ASSERT_EQ(order.size(), 8u);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ChaosMachine, RejectsBadConfig) {
  machine::SimMachine sim(1);
  machine::ChaosConfig cfg;
  cfg.max_transmit_defer = 0;
  EXPECT_THROW(machine::ChaosMachine(sim, cfg), support::LogicError);
}

// --- determinism ----------------------------------------------------------

// The acceptance criterion: the same seed produces a byte-identical
// decision-and-delivery trace (and the same virtual finish time) twice in
// a row on the deterministic backend; a different seed produces a
// different schedule.
TEST(ChaosDeterminism, SameSeedSameScheduleByteForByte) {
  auto run_once = [](std::uint64_t seed) {
    mm::MmConfig cfg;
    cfg.order = 24;
    cfg.block_order = 4;
    machine::SimMachine sim(3, cfg.testbed.lan);
    machine::ChaosMachine chaos(sim, seeded(seed));
    linalg::BlockGrid<linalg::PhantomStorage> a(cfg.order, cfg.block_order);
    linalg::BlockGrid<linalg::PhantomStorage> b(cfg.order, cfg.block_order);
    linalg::BlockGrid<linalg::PhantomStorage> c(cfg.order, cfg.block_order);
    navp_mm_1d(chaos, cfg, mm::Navp1dVariant::kPhaseShifted, a, b, c);
    return std::pair<std::string, double>{chaos.trace_summary(),
                                          chaos.finish_time()};
  };
  const auto [trace_a, time_a] = run_once(42);
  const auto [trace_b, time_b] = run_once(42);
  EXPECT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b);
  EXPECT_DOUBLE_EQ(time_a, time_b);

  const auto [trace_c, time_c] = run_once(43);
  EXPECT_NE(trace_a, trace_c);
  (void)time_c;
}

// --- legality: real programs survive fuzzed schedules ---------------------

TEST(ChaosSuite, EverySuiteCasePassesUnderDefaultChaos) {
  for (const auto& name : harness::chaos_case_names()) {
    const auto r = harness::run_chaos_case(name, seeded(7));
    EXPECT_TRUE(r.ok) << r.name << ": " << r.detail;
  }
}

TEST(ChaosSuite, SweepOverSeveralSeedsFindsNoFailures) {
  const auto report =
      harness::chaos_sweep(1, 3, machine::ChaosConfig{}, /*verbose=*/false);
  EXPECT_FALSE(report.failed)
      << report.first_failure.name << " seed " << report.first_failure.seed
      << ": " << report.first_failure.detail;
  EXPECT_EQ(report.seeds_run, 3);
}

TEST(ChaosSuite, CaseFilterSelectsSubset) {
  const auto report = harness::chaos_sweep(1, 1, machine::ChaosConfig{},
                                           /*verbose=*/false, "jacobi");
  EXPECT_FALSE(report.failed);
  EXPECT_EQ(report.cases_run, 3);
  EXPECT_THROW(harness::chaos_sweep(1, 1, machine::ChaosConfig{}, false,
                                    "no-such-case"),
               support::LogicError);
}

TEST(ChaosSuite, UnknownCaseNameThrows) {
  EXPECT_THROW(harness::run_chaos_case("mm/bogus", seeded(1)),
               support::ConfigError);
}

// --- chaos over the threaded backend --------------------------------------

TEST(ChaosThreaded, NavpProgramSurvivesWallJitterAndDelays) {
  mm::MmConfig cfg;
  cfg.order = 16;
  cfg.block_order = 4;
  const linalg::Matrix ma = linalg::Matrix::random(cfg.order, cfg.order, 1);
  const linalg::Matrix mb = linalg::Matrix::random(cfg.order, cfg.order, 2);
  auto ga = linalg::to_blocks(ma, cfg.block_order);
  auto gb = linalg::to_blocks(mb, cfg.block_order);
  linalg::BlockGrid<linalg::RealStorage> gc(cfg.order, cfg.block_order);

  machine::ThreadedMachine threaded(4);
  threaded.set_stall_timeout(10.0);
  machine::ChaosConfig ccfg = seeded(11);
  ccfg.wall_jitter = true;
  machine::ChaosMachine chaos(threaded, ccfg);
  navp_mm_2d(chaos, cfg, mm::Navp2dVariant::kPhaseShifted, ga, gb, gc);
  EXPECT_LT(linalg::max_abs_diff(linalg::from_blocks(gc),
                                 linalg::multiply(ma, mb)),
            1e-9);
  EXPECT_GT(chaos.decisions(), 0u);
}

}  // namespace
}  // namespace navcpp
