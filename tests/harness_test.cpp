// Tests for the benchmark harness: table rendering, paper data integrity,
// the curve-fit methodology, and (scaled-down) experiment drivers.
#include <gtest/gtest.h>

#include <string>

#include "harness/experiments.h"
#include "harness/paper_data.h"
#include "harness/text_table.h"
#include "mm/sequential_mm.h"
#include "support/error.h"

namespace navcpp::harness {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "123.45"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  // Numeric cells right-align: "  1.00" under "value".
  EXPECT_NE(s.find("  1.00"), std::string::npos);
  // Header underline exists.
  EXPECT_NE(s.find("-----"), std::string::npos);
}

TEST(TextTable, RejectsWrongCellCount) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), support::LogicError);
}

TEST(TextTable, NumFormatsFixedPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(PaperData, TablesHaveExpectedRowCounts) {
  EXPECT_EQ(paper_table1().size(), 6u);
  EXPECT_EQ(paper_table3().size(), 5u);
  EXPECT_EQ(paper_table4().size(), 6u);
  EXPECT_EQ(paper_table2().order, 9216);
}

TEST(PaperData, SpeedupsAreConsistentWithTimes) {
  // paper speedup ~= seq / time for every NavP column (1% slack for the
  // paper's own rounding).
  for (const auto& r : paper_table1()) {
    EXPECT_NEAR(r.seq_s / r.dsc_s, r.dsc_su, 0.011 * r.dsc_su);
    EXPECT_NEAR(r.seq_s / r.pipe_s, r.pipe_su, 0.011 * r.pipe_su);
    EXPECT_NEAR(r.seq_s / r.phase_s, r.phase_su, 0.011 * r.phase_su);
  }
  for (const auto& r : paper_table4()) {
    EXPECT_NEAR(r.seq_s / r.mpi_s, r.mpi_su, 0.011 * r.mpi_su);
    EXPECT_NEAR(r.seq_s / r.phase_s, r.phase_su, 0.011 * r.phase_su);
  }
}

TEST(PaperData, PhaseAlwaysBeatsPipelineInThePaper) {
  for (const auto& r : paper_table1()) EXPECT_LT(r.phase_s, r.pipe_s);
  for (const auto& r : paper_table3()) EXPECT_LT(r.phase_s, r.pipe_s);
  for (const auto& r : paper_table4()) EXPECT_LT(r.phase_s, r.pipe_s);
}

TEST(CurveFit, RecoversInCoreTimesFromInCoreSamples) {
  // The modeled sequential time is exactly cubic in N while in core, so
  // the fit must extrapolate it almost perfectly.
  mm::MmConfig base;
  const double fitted =
      curve_fit_sequential(base, {256, 512, 768, 1024, 1536, 2048}, 1792);
  mm::MmConfig cfg = base;
  cfg.order = 1792;
  EXPECT_NEAR(fitted, mm::sequential_mm_seconds_in_core(cfg),
              1e-6 * fitted);
}

TEST(CurveFit, UndershootsThrashingRuns) {
  // Extrapolating the in-core cubic to an out-of-core order must fall far
  // below the modeled thrashing run — that gap is Table 2's whole point.
  mm::MmConfig base;
  const double fitted = curve_fit_sequential(
      base, {512, 768, 1024, 1536, 2048, 2560, 3072}, 9216);
  mm::MmConfig cfg = base;
  cfg.order = 9216;
  EXPECT_LT(fitted, 0.5 * mm::sequential_mm_seconds(cfg));
}

TEST(Experiments, Measured1dRowIsInternallyConsistent) {
  // Scaled-down problem: fast enough for the test suite.
  mm::MmConfig base;
  const Measured1D row = measure_1d_row(384, 64, 3, base);
  EXPECT_EQ(row.order, 384);
  EXPECT_GT(row.seq_in_core, 0.0);
  EXPECT_DOUBLE_EQ(row.seq_in_core, row.seq_actual);  // in core: no paging
  // The three stages are each a working program; DSC is the slowest.
  EXPECT_GT(row.dsc, row.pipe);
  EXPECT_GT(row.dsc, row.phase);
  EXPECT_GT(row.dsc, row.seq_in_core);  // DSC ~ sequential + hops
  EXPECT_GT(row.summa, 0.0);
}

TEST(Experiments, Measured2dRowIsInternallyConsistent) {
  mm::MmConfig base;
  const Measured2D row = measure_2d_row(384, 64, 2, base);
  EXPECT_GT(row.dsc, row.pipe);
  EXPECT_GT(row.mpi, 0.0);
  EXPECT_GT(row.phase, 0.0);
  EXPECT_GT(row.summa, 0.0);
}

TEST(Experiments, MeasurementsAreDeterministic) {
  mm::MmConfig base;
  const Measured2D a = measure_2d_row(384, 64, 2, base);
  const Measured2D b = measure_2d_row(384, 64, 2, base);
  EXPECT_DOUBLE_EQ(a.mpi, b.mpi);
  EXPECT_DOUBLE_EQ(a.dsc, b.dsc);
  EXPECT_DOUBLE_EQ(a.pipe, b.pipe);
  EXPECT_DOUBLE_EQ(a.phase, b.phase);
  EXPECT_DOUBLE_EQ(a.summa, b.summa);
}

}  // namespace
}  // namespace navcpp::harness
