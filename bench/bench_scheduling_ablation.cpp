// Reproduces section 5, point 1: run-time task scheduling.
//
//   "In the case of NavP, the order [of block updates] is not predefined
//    and the CPU cycles are thus efficiently utilized ... In MPI ... the
//    loop introduces an artificial sequential order to the communications
//    and computations."
//
// We compare per-PE idle time (finish - busy) between Gentleman's
// algorithm (fixed block order with in-line waits) and the NavP 2D
// phase-shifted program (event-driven order) at equal problem sizes.
#include <algorithm>
#include <cstdio>

#include "harness/text_table.h"
#include "machine/sim_machine.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_2d.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

namespace {

struct UtilStats {
  double finish = 0.0;
  double max_idle = 0.0;
  double avg_idle = 0.0;
};

template <class Fn>
UtilStats measure(const navcpp::mm::MmConfig& cfg, Fn&& run) {
  navcpp::machine::SimMachine m(9, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
  run(m, cfg, a, b, c);
  UtilStats s;
  s.finish = m.finish_time();
  double total_idle = 0.0;
  for (int pe = 0; pe < m.pe_count(); ++pe) {
    const double idle = s.finish - m.busy_time(pe);
    s.max_idle = std::max(s.max_idle, idle);
    total_idle += idle;
  }
  s.avg_idle = total_idle / m.pe_count();
  return s;
}

}  // namespace

int main() {
  std::printf(
      "=== Section 5.1: scheduling — idle time, MPI vs NavP (3x3) ===\n\n");
  TextTable table({"N", "program", "finish(s)", "avg idle(s)", "max idle(s)",
                   "utilization"});
  for (int order : {1536, 3072, 4608}) {
    navcpp::mm::MmConfig cfg;
    cfg.order = order;
    cfg.block_order = 128;

    const UtilStats mpi = measure(cfg, [](auto& m, const auto& c, auto& a,
                                          auto& b, auto& cc) {
      navcpp::mm::gentleman_mm(m, c, navcpp::mm::StaggerMode::kDirect, a, b,
                               cc);
    });
    const UtilStats navp = measure(cfg, [](auto& m, const auto& c, auto& a,
                                           auto& b, auto& cc) {
      navcpp::mm::navp_mm_2d(m, c, navcpp::mm::Navp2dVariant::kPhaseShifted,
                             a, b, cc);
    });
    auto add = [&](const char* name, const UtilStats& s) {
      table.add_row({std::to_string(order), name, TextTable::num(s.finish),
                     TextTable::num(s.avg_idle), TextTable::num(s.max_idle),
                     TextTable::num(100.0 * (1.0 - s.avg_idle / s.finish),
                                    1) +
                         "%"});
    };
    add("MPI (Gentleman)", mpi);
    add("NavP 2D phase", navp);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: the NavP program keeps the PEs busier (less\n"
              "idle) because block updates run in data-arrival order, while\n"
              "Gentleman's fixed per-iteration order stalls on the boundary\n"
              "receives.\n");
  return 0;
}
