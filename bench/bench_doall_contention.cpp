// Reproduces the section 3 argument around Figure 3: a zero-inventory
// doall parallelization either contends at the owners or replicates data
// non-scalably.  We run the replication doall against Gentleman and NavP
// phase shifting while shrinking the block order at fixed matrix order:
//
//  * the doall is never competitive — its t=0 replication burst serializes
//    at the owners' NICs and its fixed assembly order leaves the PEs idle
//    while whole rows/columns stream in;
//  * at very fine granularity *everything* drowns in per-message and
//    per-activation overheads — which is exactly why the paper computes
//    with algorithmic blocks instead of matrix entries.
#include <cstdio>

#include "harness/text_table.h"
#include "machine/sim_machine.h"
#include "mm/doall_mm.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

namespace {

template <class Fn>
double run(const navcpp::mm::MmConfig& cfg, Fn&& fn) {
  navcpp::machine::SimMachine m(9, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
  return fn(m, cfg, a, b, c);
}

}  // namespace

int main() {
  std::printf("=== Figure 3 strawman: doall with replication (3x3 PEs) ===\n");
  std::printf("fixed N = 1152; the block order shrinks, so communication\n"
              "grows relative to compute\n\n");
  TextTable table({"blk", "seq(s)", "doall su", "Gentleman su",
                   "NavP phase su"});
  for (int block : {192, 96, 48, 24}) {
    navcpp::mm::MmConfig cfg;
    cfg.order = 1152;
    cfg.block_order = block;
    const double seq = navcpp::mm::sequential_mm_seconds_in_core(cfg);
    const double doall =
        run(cfg, [](auto& m, const auto& c, auto& a, auto& b, auto& cc) {
          return navcpp::mm::doall_mm(m, c, a, b, cc).seconds;
        });
    const double gent =
        run(cfg, [](auto& m, const auto& c, auto& a, auto& b, auto& cc) {
          return navcpp::mm::gentleman_mm(
                     m, c, navcpp::mm::StaggerMode::kDirect, a, b, cc)
              .seconds;
        });
    const double phase =
        run(cfg, [](auto& m, const auto& c, auto& a, auto& b, auto& cc) {
          return navcpp::mm::navp_mm_2d(
                     m, c, navcpp::mm::Navp2dVariant::kPhaseShifted, a, b,
                     cc)
              .seconds;
        });
    table.add_row({std::to_string(block), TextTable::num(seq),
                   TextTable::num(seq / doall), TextTable::num(seq / gent),
                   TextTable::num(seq / phase)});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: the replication doall trails Gentleman and\n"
              "NavP at every granularity (the Figure 3 strawman is not a\n"
              "serious contender), and fine granularity sinks every\n"
              "algorithm — the reason the paper's implementations all use\n"
              "algorithmic blocks.\n");
  return 0;
}
