// Reproduces Figure 1: the space-time diagrams of the three NavP
// transformations — (b) DSC, (c) pipelining, (d) phase shifting —
// regenerated from *actual executions* on the simulated 3-workstation
// cluster.  Time flows downward; one column per PE; each cell shows the
// base-36 id of the agent computing there ('|' = parked on an event,
// '.' = idle).  (Figure 1(a), the sequential program, is a single column
// of one agent — subsumed by (b) on one PE.)
#include <cstdio>
#include <utility>

#include "machine/sim_machine.h"
#include "mm/navp_mm_1d.h"
#include "navp/trace.h"

using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

int main() {
  std::printf(
      "=== Figure 1: space-time diagrams of the transformations ===\n");
  std::printf("(executions of the 1-D programs, N=768, block 64, 3 PEs)\n\n");
  for (auto [variant, caption] :
       {std::pair{navcpp::mm::Navp1dVariant::kDsc, "(b) DSC"},
        std::pair{navcpp::mm::Navp1dVariant::kPipelined, "(c) Pipelining"},
        std::pair{navcpp::mm::Navp1dVariant::kPhaseShifted,
                  "(d) Phase shifting"}}) {
    navcpp::mm::MmConfig cfg;
    cfg.order = 768;  // nb = 12 blocks over 3 PEs: readable diagrams
    cfg.block_order = 64;
    navcpp::machine::SimMachine m(3, cfg.testbed.lan);
    BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
    BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    navcpp::navp::TraceRecorder trace;
    navcpp::mm::MmTraceScope scope(&trace);
    const auto stats = navcpp::mm::navp_mm_1d(m, cfg, variant, a, b, c);
    const auto summary = navcpp::navp::summarize(trace, 3);
    std::printf(
        "%s — finished at %.3f virtual seconds, mean utilization %.0f%%\n"
        "%s\n",
        caption, stats.seconds,
        100.0 * navcpp::navp::mean_utilization(summary),
        trace.render_spacetime(3, 36).c_str());
  }
  std::printf(
      "reading: (b) one agent snakes across the PEs (sequential in space);\n"
      "(c) staggered agents overlap down the pipeline; (d) all PEs compute\n"
      "from the start.\n");
  return 0;
}
