// Ablation: slab vs block-cyclic distribution for the NavP programs.
//
// EXPERIMENTS.md's first known deviation is that our simulated 2D DSC runs
// 20-35% below the paper's: under the slab layout, the w RowCarriers of a
// PE row march through the same PE together (their phase shifts differ by
// one *block*, which stays inside one slab).  The block-cyclic layout
// makes consecutive block columns live on different PEs, spreading the
// marching carriers across the row at the price of a network crossing on
// every hop.  This benchmark quantifies that trade for all six NavP
// stages.
#include <cstdio>

#include "harness/text_table.h"
#include "machine/sim_machine.h"
#include "mm/navp_mm_1d.h"
#include "mm/navp_mm_2d.h"
#include "mm/sequential_mm.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;
using navcpp::mm::Layout;
using navcpp::mm::MmConfig;

namespace {

template <class Fn>
double timed(const MmConfig& cfg, int pes, Fn&& fn) {
  navcpp::machine::SimMachine m(pes, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
  return fn(m, cfg, a, b, c);
}

}  // namespace

int main() {
  std::printf("=== Layout ablation: slab vs block-cyclic (N=1536, blk 128) "
              "===\n\n");
  TextTable table({"program", "PEs", "slab su", "cyclic su"});
  MmConfig base;
  base.order = 1536;
  base.block_order = 128;
  const double seq = navcpp::mm::sequential_mm_seconds_in_core(base);

  auto row_1d = [&](navcpp::mm::Navp1dVariant v) {
    double su[2];
    for (Layout layout : {Layout::kSlab, Layout::kCyclic}) {
      MmConfig cfg = base;
      cfg.layout = layout;
      const double t =
          timed(cfg, 3, [v](auto& m, const auto& c, auto& a, auto& b,
                            auto& cc) {
            return navcpp::mm::navp_mm_1d(m, c, v, a, b, cc).seconds;
          });
      su[layout == Layout::kSlab ? 0 : 1] = seq / t;
    }
    table.add_row({navcpp::mm::to_string(v), "3", TextTable::num(su[0]),
                   TextTable::num(su[1])});
  };
  auto row_2d = [&](navcpp::mm::Navp2dVariant v) {
    double su[2];
    for (Layout layout : {Layout::kSlab, Layout::kCyclic}) {
      MmConfig cfg = base;
      cfg.layout = layout;
      const double t =
          timed(cfg, 9, [v](auto& m, const auto& c, auto& a, auto& b,
                            auto& cc) {
            return navcpp::mm::navp_mm_2d(m, c, v, a, b, cc).seconds;
          });
      su[layout == Layout::kSlab ? 0 : 1] = seq / t;
    }
    table.add_row({navcpp::mm::to_string(v), "3x3", TextTable::num(su[0]),
                   TextTable::num(su[1])});
  };

  row_1d(navcpp::mm::Navp1dVariant::kDsc);
  row_1d(navcpp::mm::Navp1dVariant::kPipelined);
  row_1d(navcpp::mm::Navp1dVariant::kPhaseShifted);
  row_2d(navcpp::mm::Navp2dVariant::kDsc);
  row_2d(navcpp::mm::Navp2dVariant::kPipelined);
  row_2d(navcpp::mm::Navp2dVariant::kPhaseShifted);

  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: cyclic helps exactly where slab clusters\n"
              "carriers (2D DSC); elsewhere the extra per-hop crossings\n"
              "make it a wash or a loss.  The paper's own implementation\n"
              "likely sat between these layouts (its exact coarse\n"
              "itinerary is not specified).\n");
  return 0;
}
