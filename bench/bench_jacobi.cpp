// Extension benchmark: the NavP transformations applied to a different
// dependence structure — Jacobi iteration (5-point stencil), 1-D slab
// decomposition on the simulated testbed.
//
// The paper presents DSC/Pipelining/Phase-shifting as a general
// methodology; this benchmark shows how far each takes a stencil:
//   * DSC runs at ~1x sequential (the out-of-core enabler);
//   * pipelining traveling agents is bounded near P/2 — sweep t at slab p
//     waits for sweep t-1 at slab p+1, which itself trails slab p, giving
//     a two-slot wavefront period (phase shifting is inapplicable for the
//     same reason);
//   * the dataflow rewrite (stationary agents + one-hop ghost carriers)
//     reaches ~P — the point where the NavP view meets the SPMD view (the
//     paper's closing remarks, made measurable).
#include <cstdio>

#include "apps/jacobi.h"
#include "harness/text_table.h"
#include "machine/sim_machine.h"

using navcpp::apps::JacobiConfig;
using navcpp::apps::JacobiGrid;
using navcpp::apps::JacobiStats;
using navcpp::apps::JacobiVariant;
using navcpp::harness::TextTable;

int main() {
  std::printf("=== Extension: Jacobi iteration under the NavP "
              "transformations ===\n");
  std::printf("grid 1538x1536, 48 sweeps, simulated testbed\n\n");
  TextTable table({"PEs", "seq(s)", "variant", "sim(s)", "speedup"});
  for (int pes : {2, 4, 8}) {
    JacobiConfig cfg;
    cfg.rows = 1538;  // 1536 interior rows
    cfg.cols = 1536;
    cfg.sweeps = 48;
    const double seq = navcpp::apps::jacobi_sequential_seconds(
        cfg.testbed, cfg.rows, cfg.cols, cfg.sweeps);
    const JacobiGrid g = JacobiGrid::heated_plate(cfg.rows, cfg.cols);
    for (auto v : {JacobiVariant::kDsc, JacobiVariant::kPipelined,
                   JacobiVariant::kDataflow}) {
      navcpp::machine::SimMachine m(pes, cfg.testbed.lan);
      JacobiStats stats;
      navcpp::apps::jacobi_navp(m, cfg, v, g, &stats);
      table.add_row({std::to_string(pes), TextTable::num(seq),
                     navcpp::apps::to_string(v), TextTable::num(stats.seconds),
                     TextTable::num(seq / stats.seconds)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: DSC ~1x at every PE count; pipeline "
              "saturates near P/2;\ndataflow tracks ~0.8-0.95 of P.\n");
  return 0;
}
