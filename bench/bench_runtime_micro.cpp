// Real-machine microbenchmarks (google-benchmark) of the NavP runtime and
// the simulation engine: hop throughput on both backends, event
// signal/wait, injection, and discrete-event queue operations.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "machine/chaos_machine.h"
#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "sim/event_queue.h"

namespace {

using navcpp::navp::Ctx;
using navcpp::navp::EventKey;
using navcpp::navp::Mission;
using navcpp::navp::Runtime;

// Opt-in schedule fuzzing for the runtime microbenchmarks: when
// NAVCPP_CHAOS_SEED is set, the hop benchmarks run through a ChaosMachine
// with that seed, so the fuzzed runtime can be profiled (and the decorator's
// overhead measured) without a separate build.
bool chaos_seed(std::uint64_t* seed) {
  const char* env = std::getenv("NAVCPP_CHAOS_SEED");
  if (env == nullptr) return false;
  *seed = std::strtoull(env, nullptr, 10);
  return true;
}

Mission hopper(Ctx ctx, int laps) {
  for (int i = 0; i < laps; ++i) {
    for (int pe = 0; pe < ctx.pe_count(); ++pe) {
      co_await ctx.hop(pe, 64);
    }
  }
}

void BM_SimHops(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  const bool chaos = chaos_seed(&seed);
  for (auto _ : state) {
    navcpp::machine::SimMachine m(4);
    navcpp::machine::ChaosConfig ccfg;
    ccfg.seed = seed;
    navcpp::machine::ChaosMachine cm(m, ccfg);
    Runtime rt(chaos ? static_cast<navcpp::machine::Engine&>(cm)
                     : static_cast<navcpp::machine::Engine&>(m));
    rt.inject(0, "hopper", hopper, laps);
    rt.run();
    benchmark::DoNotOptimize(rt.hop_count());
  }
  state.SetItemsProcessed(state.iterations() * laps * 4);
}
BENCHMARK(BM_SimHops)->Arg(100)->Arg(1000);

// The decorator's intercept cost in isolation: same hop workload, chaos
// wrapper always on but with every perturbation probability at zero.
void BM_ChaosHopsPassthrough(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::SimMachine m(4);
    navcpp::machine::ChaosConfig ccfg;
    ccfg.transmit_delay_prob = 0.0;
    ccfg.post_jitter_prob = 0.0;
    navcpp::machine::ChaosMachine cm(m, ccfg);
    Runtime rt(cm);
    rt.inject(0, "hopper", hopper, laps);
    rt.run();
    benchmark::DoNotOptimize(rt.hop_count());
  }
  state.SetItemsProcessed(state.iterations() * laps * 4);
}
BENCHMARK(BM_ChaosHopsPassthrough)->Arg(1000);

void BM_ThreadedHops(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::ThreadedMachine m(2);
    Runtime rt(m);
    rt.inject(0, "hopper", hopper, laps);
    rt.run();
    benchmark::DoNotOptimize(rt.hop_count());
  }
  state.SetItemsProcessed(state.iterations() * laps * 2);
}
BENCHMARK(BM_ThreadedHops)->Arg(100)->Arg(1000);

Mission signaler(Ctx ctx, int count) {
  for (int i = 0; i < count; ++i) ctx.signal_event(EventKey{1, 0, 0});
  co_return;
}

Mission waiter(Ctx ctx, int count) {
  for (int i = 0; i < count; ++i) co_await ctx.wait_event(EventKey{1, 0, 0});
}

void BM_SimEventPingPong(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::SimMachine m(1);
    Runtime rt(m);
    rt.inject(0, "waiter", waiter, count);
    rt.inject(0, "signaler", signaler, count);
    rt.run();
    benchmark::DoNotOptimize(rt.waits_satisfied());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SimEventPingPong)->Arg(1000);

Mission trivial(Ctx ctx) {
  (void)ctx;
  co_return;
}

void BM_SimInject(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::SimMachine m(1);
    Runtime rt(m);
    for (int i = 0; i < count; ++i) rt.inject(0, "t", trivial);
    rt.run();
    benchmark::DoNotOptimize(rt.agents_completed());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SimInject)->Arg(1000);

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::sim::EventQueue q;
    for (int i = 0; i < count; ++i) {
      q.schedule(static_cast<double>(i % 97), [] {});
    }
    while (!q.empty()) q.pop()();
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
