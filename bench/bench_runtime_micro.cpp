// Real-machine microbenchmarks (google-benchmark) of the NavP runtime and
// the simulation engine: hop throughput on both backends, event
// signal/wait, injection, and discrete-event queue operations.
#include <benchmark/benchmark.h>

#include <memory>

#include "machine/sim_machine.h"
#include "machine/threaded_machine.h"
#include "navp/runtime.h"
#include "sim/event_queue.h"

namespace {

using navcpp::navp::Ctx;
using navcpp::navp::EventKey;
using navcpp::navp::Mission;
using navcpp::navp::Runtime;

Mission hopper(Ctx ctx, int laps) {
  for (int i = 0; i < laps; ++i) {
    for (int pe = 0; pe < ctx.pe_count(); ++pe) {
      co_await ctx.hop(pe, 64);
    }
  }
}

void BM_SimHops(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::SimMachine m(4);
    Runtime rt(m);
    rt.inject(0, "hopper", hopper, laps);
    rt.run();
    benchmark::DoNotOptimize(rt.hop_count());
  }
  state.SetItemsProcessed(state.iterations() * laps * 4);
}
BENCHMARK(BM_SimHops)->Arg(100)->Arg(1000);

void BM_ThreadedHops(benchmark::State& state) {
  const int laps = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::ThreadedMachine m(2);
    Runtime rt(m);
    rt.inject(0, "hopper", hopper, laps);
    rt.run();
    benchmark::DoNotOptimize(rt.hop_count());
  }
  state.SetItemsProcessed(state.iterations() * laps * 2);
}
BENCHMARK(BM_ThreadedHops)->Arg(100)->Arg(1000);

Mission signaler(Ctx ctx, int count) {
  for (int i = 0; i < count; ++i) ctx.signal_event(EventKey{1, 0, 0});
  co_return;
}

Mission waiter(Ctx ctx, int count) {
  for (int i = 0; i < count; ++i) co_await ctx.wait_event(EventKey{1, 0, 0});
}

void BM_SimEventPingPong(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::SimMachine m(1);
    Runtime rt(m);
    rt.inject(0, "waiter", waiter, count);
    rt.inject(0, "signaler", signaler, count);
    rt.run();
    benchmark::DoNotOptimize(rt.waits_satisfied());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SimEventPingPong)->Arg(1000);

Mission trivial(Ctx ctx) {
  (void)ctx;
  co_return;
}

void BM_SimInject(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::machine::SimMachine m(1);
    Runtime rt(m);
    for (int i = 0; i < count; ++i) rt.inject(0, "t", trivial);
    rt.run();
    benchmark::DoNotOptimize(rt.agents_completed());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_SimInject)->Arg(1000);

void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    navcpp::sim::EventQueue q;
    for (int i = 0; i < count; ++i) {
      q.schedule(static_cast<double>(i % 97), [] {});
    }
    while (!q.empty()) q.pop()();
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
