// Shared row printer for the Table 3 / Table 4 reproductions.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiments.h"
#include "harness/paper_data.h"
#include "harness/text_table.h"
#include "mm/common.h"

namespace navcpp::harness {

inline void run_2d_table(const char* title, int grid,
                         const std::vector<PaperRow2D>& paper_rows) {
  std::printf("=== %s ===\n\n", title);
  TextTable table({"N", "blk", "seq(s)", "variant", "paper(s)", "paper su",
                   "sim(s)", "sim su"});
  const mm::MmConfig base;
  for (const auto& p : paper_rows) {
    const Measured2D m = measure_2d_row(p.order, p.block, grid, base);
    const double seq = m.seq_in_core;
    auto add = [&](const char* name, double paper_s, double paper_su,
                   double sim_s) {
      table.add_row({std::to_string(p.order), std::to_string(p.block),
                     TextTable::num(seq), name, TextTable::num(paper_s),
                     TextTable::num(paper_su), TextTable::num(sim_s),
                     TextTable::num(seq / sim_s)});
    };
    add("MPI (Gentleman)", p.mpi_s, p.mpi_su, m.mpi);
    add("NavP 2D DSC", p.dsc_s, p.dsc_su, m.dsc);
    add("NavP 2D pipeline", p.pipe_s, p.pipe_su, m.pipe);
    add("NavP 2D phase", p.phase_s, p.phase_su, m.phase);
    add("ScaLAPACK~SUMMA", p.scalapack_s, p.scalapack_su, m.summa);
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace navcpp::harness
