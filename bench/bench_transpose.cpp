// Extension benchmark: distributed block transpose — the all-exchange
// communication pattern (an involution, hence <= 2 half-duplex phases by
// the section 5.3 analysis), NavP swap carriers vs mini-MPI pairwise
// exchange, across layouts.
#include <cstdio>

#include "harness/text_table.h"
#include "machine/sim_machine.h"
#include "mm/transpose.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;
using navcpp::mm::Layout;
using navcpp::mm::MmConfig;

int main() {
  std::printf("=== Extension: distributed transpose (3x3 PEs) ===\n\n");
  TextTable table({"N", "blk", "method", "layout", "sim(s)", "messages",
                   "MB"});
  for (int order : {1536, 3072}) {
    for (Layout layout : {Layout::kSlab, Layout::kCyclic}) {
      MmConfig cfg;
      cfg.order = order;
      cfg.block_order = 128;
      cfg.layout = layout;
      {
        navcpp::machine::SimMachine m(9, cfg.testbed.lan);
        BlockGrid<PhantomStorage> g(order, 128);
        const auto stats = navcpp::mm::navp_transpose(m, cfg, g);
        table.add_row({std::to_string(order), "128", "NavP carriers",
                       navcpp::mm::to_string(layout),
                       TextTable::num(stats.seconds),
                       std::to_string(stats.messages),
                       TextTable::num(stats.bytes / 1e6, 1)});
      }
      if (layout == Layout::kSlab) {
        navcpp::machine::SimMachine m(9, cfg.testbed.lan);
        BlockGrid<PhantomStorage> a(order, 128), c(order, 128);
        const auto stats = navcpp::mm::mpi_transpose(m, cfg, a, c);
        table.add_row({std::to_string(order), "128", "mini-MPI exchange",
                       "slab", TextTable::num(stats.seconds),
                       std::to_string(stats.messages),
                       TextTable::num(stats.bytes / 1e6, 1)});
      }
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: both methods move exactly one message per\n"
              "remote off-diagonal block and finish in the same simulated\n"
              "time; the exchange pattern is an involution, so NIC\n"
              "occupancy never serializes more than two deep (the\n"
              "reverse-staggering property of section 5.3).  On a square\n"
              "grid the slab and cyclic mappings co-locate exactly the\n"
              "same transpose pairs (owner symmetry), hence the equal\n"
              "message counts.\n");
  return 0;
}
