// Extension benchmark: block LU factorization under the NavP
// transformations — a triangular pipeline whose per-step work shrinks,
// unlike matmul's rectangular one.
#include <cstdio>

#include "apps/lu.h"
#include "harness/text_table.h"
#include "machine/sim_machine.h"

using navcpp::apps::LuConfig;
using navcpp::apps::LuStats;
using navcpp::apps::LuVariant;
using navcpp::harness::TextTable;

int main() {
  std::printf("=== Extension: block LU factorization (no pivoting) ===\n");
  std::printf("N=1536, block 128, simulated testbed; phase shifting is\n"
              "inapplicable (the k-chain orders every column's updates)\n\n");
  TextTable table({"PEs", "seq(s)", "variant", "sim(s)", "speedup"});
  for (int pes : {2, 4, 6}) {
    LuConfig cfg;
    cfg.order = 1536;
    cfg.block_order = 128;
    if (cfg.nb() % pes != 0) continue;
    const double seq = navcpp::apps::lu_sequential_seconds(cfg);
    const auto a = navcpp::apps::diagonally_dominant(cfg.order, 17);
    for (auto v : {LuVariant::kDsc, LuVariant::kPipelined}) {
      navcpp::machine::SimMachine m(pes, cfg.testbed.lan);
      LuStats stats;
      navcpp::apps::lu_navp(m, cfg, v, a, &stats);
      table.add_row({std::to_string(pes), TextTable::num(seq),
                     navcpp::apps::to_string(v),
                     TextTable::num(stats.seconds),
                     TextTable::num(seq / stats.seconds)});
    }
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: DSC ~1x; the pipeline gains real but\n"
              "sub-linear speedup — the triangular tail starves the later\n"
              "carriers (fill/drain dominate as k grows).\n");
  return 0;
}
