// Extension benchmark: plans derived mechanically by navtool vs the
// hand-written NavP programs, on the 1-D matmul nest at Table 1's smallest
// configuration.  The derived programs must land close to the hand-written
// ones (they omit only the canonical-layout scatter the hand-written
// phase-shifted program performs).
#include <cstdio>

#include "harness/text_table.h"
#include "machine/sim_machine.h"
#include "mm/navp_mm_1d.h"
#include "mm/sequential_mm.h"
#include "navtool/planner.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

int main() {
  std::printf("=== navtool: derived plans vs hand-written programs ===\n");
  std::printf("1-D matmul nest, N=1536, block 128, 3 PEs\n\n");

  navcpp::mm::MmConfig cfg;
  cfg.order = 1536;
  cfg.block_order = 128;
  const int nb = cfg.nb();
  const navcpp::mm::Dist1D dist(nb, 3);

  // The nest spec for Figure 5/7/9's loop structure.
  navcpp::navtool::NestSpec spec;
  spec.threads = nb;
  spec.steps = nb;
  spec.rows_independent = true;
  spec.start_rotatable = true;
  spec.payload_bytes = static_cast<std::size_t>(cfg.order) *
                       cfg.block_order * sizeof(double);
  spec.step_cost_seconds = cfg.testbed.gemm_seconds(
      cfg.block_order, cfg.block_order, cfg.order);

  const navcpp::navtool::StatementBody body =
      [&](navcpp::navp::Ctx& ctx, int, int) {
        ctx.compute(spec.step_cost_seconds, "C-block");
      };

  auto planned_seconds = [&](navcpp::navtool::NestSpec s) {
    const auto plan = navcpp::navtool::plan_nest(s, dist);
    navcpp::machine::SimMachine m(3, cfg.testbed.lan);
    return navcpp::navtool::execute_plan(m, plan, s, body).seconds;
  };
  auto handwritten_seconds = [&](navcpp::mm::Navp1dVariant v) {
    navcpp::machine::SimMachine m(3, cfg.testbed.lan);
    BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
    BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    return navcpp::mm::navp_mm_1d(m, cfg, v, a, b, c).seconds;
  };

  navcpp::navtool::NestSpec as_pipe = spec;
  as_pipe.start_rotatable = false;
  navcpp::navtool::NestSpec as_dsc = spec;
  as_dsc.rows_independent = false;
  as_dsc.start_rotatable = false;

  TextTable table({"stage", "hand-written(s)", "derived(s)"});
  table.add_row({"DSC", TextTable::num(handwritten_seconds(
                            navcpp::mm::Navp1dVariant::kDsc)),
                 TextTable::num(planned_seconds(as_dsc))});
  table.add_row({"pipelined", TextTable::num(handwritten_seconds(
                                  navcpp::mm::Navp1dVariant::kPipelined)),
                 TextTable::num(planned_seconds(as_pipe))});
  table.add_row({"phase-shifted",
                 TextTable::num(handwritten_seconds(
                     navcpp::mm::Navp1dVariant::kPhaseShifted)),
                 TextTable::num(planned_seconds(spec))});
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: the derived programs track the hand-written\n"
              "ones (the derived phase-shifted plan is slightly faster\n"
              "because it assumes its rows pre-scattered, while the\n"
              "hand-written program pays the canonical-layout scatter).\n");
  return 0;
}
