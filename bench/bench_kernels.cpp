// Real-machine microbenchmarks (google-benchmark) of the linear-algebra
// kernels: GEMM variants at the paper's algorithmic block sizes, block
// grid scatter/gather, and the staggering analysis.
#include <benchmark/benchmark.h>

#include "linalg/block.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/stagger.h"

namespace {

using navcpp::linalg::Matrix;

void BM_GemmAcc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix a = Matrix::random(n, n, 1);
  const Matrix b = Matrix::random(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    navcpp::linalg::gemm_acc(c.view(), a.view(), b.view());
    benchmark::DoNotOptimize(c.view().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2LL * n * n * n));
}
BENCHMARK(BM_GemmAcc)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix a = Matrix::random(n, n, 1);
  const Matrix b = Matrix::random(n, n, 2);
  Matrix c(n, n);
  for (auto _ : state) {
    navcpp::linalg::gemm_acc_naive(c.view(), a.view(), b.view());
    benchmark::DoNotOptimize(c.view().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2LL * n * n * n));
}
BENCHMARK(BM_GemmNaive)->Arg(32)->Arg(64)->Arg(128);

void BM_ToBlocksFromBlocks(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Matrix m = Matrix::random(n, n, 3);
  for (auto _ : state) {
    auto grid = navcpp::linalg::to_blocks(m, 64);
    Matrix back = navcpp::linalg::from_blocks(grid);
    benchmark::DoNotOptimize(back(0, 0));
  }
}
BENCHMARK(BM_ToBlocksFromBlocks)->Arg(256)->Arg(512);

void BM_StaggerPhaseAnalysis(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(navcpp::linalg::forward_stagger_phases(n));
    benchmark::DoNotOptimize(navcpp::linalg::reverse_stagger_phases(n));
  }
}
BENCHMARK(BM_StaggerPhaseAnalysis)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
