// Reproduces Table 3: performance on 2x2 PEs.
#include "bench_table2d_common.h"

int main() {
  navcpp::harness::run_2d_table("Table 3: 2x2 PEs", 2,
                                navcpp::harness::paper_table3());
  std::printf(
      "expected shape: MPI between 2D DSC and 2D pipeline; each NavP\n"
      "transformation improves on its predecessor; phase shifting best\n"
      "(~3.8-3.9x of 4 PEs).  Known deviation: our simulated 2D DSC runs\n"
      "~20%% below the paper's, and the SUMMA stand-in does not reproduce\n"
      "ScaLAPACK's large-N decline (see EXPERIMENTS.md).\n");
  return 0;
}
