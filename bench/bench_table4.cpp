// Reproduces Table 4: performance on 3x3 PEs.
#include "bench_table2d_common.h"

int main() {
  navcpp::harness::run_2d_table("Table 4: 3x3 PEs", 3,
                                navcpp::harness::paper_table4());
  std::printf(
      "expected shape: NavP 2D DSC < MPI (Gentleman) < NavP 2D pipeline <\n"
      "NavP 2D phase (~8.1-8.9x of 9 PEs), matching the paper's ordering\n"
      "at every matrix order.  See EXPERIMENTS.md for the per-row\n"
      "comparison and known deviations.\n");
  return 0;
}
