// Reproduces section 5, point 3: initial staggering — "reverse staggering
// never requires more than two communication phases, while forward
// staggering often requires three."
//
// Part 1 analyzes the permutations: under half-duplex NICs, a permutation
// needs as many phases as its worst cycle (fixed point 0, even cycle 2,
// odd cycle 3).  Reverse staggering is an involution (cycles <= 2);
// forward staggering is a family of cyclic shifts, which contain an odd
// cycle whenever the PE count is not a power of two.
//
// Part 2 measures the end-to-end staggering time through the full network
// model (Gentleman's direct forward skew vs. the NavP reverse staggering
// performed by the phase-shifted carriers' first hops, and vs. Cannon's
// stepwise staggering).
#include <cstdio>
#include <vector>

#include "harness/text_table.h"
#include "linalg/stagger.h"
#include "machine/sim_machine.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_2d.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

int main() {
  std::printf("=== Section 5.3: forward vs reverse staggering ===\n\n");

  TextTable phases({"PEs", "forward phases", "reverse phases",
                    "reverse involution?"});
  for (int n : {2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 25}) {
    bool invol = true;
    for (int i = 0; i < n && invol; ++i) {
      invol = navcpp::linalg::is_involution(
          navcpp::linalg::reverse_row_permutation(i, n));
    }
    phases.add_row({std::to_string(n),
                    std::to_string(navcpp::linalg::forward_stagger_phases(n)),
                    std::to_string(navcpp::linalg::reverse_stagger_phases(n)),
                    invol ? "yes" : "NO"});
  }
  std::printf("%s\n", phases.str().c_str());

  std::printf("end-to-end staggering cost inside the full runs "
              "(N=1536, block 128, 3x3 PEs):\n\n");
  navcpp::mm::MmConfig cfg;
  cfg.order = 1536;
  cfg.block_order = 128;
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);

  TextTable runs({"program", "staggering style", "total sim(s)"});
  {
    navcpp::machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    const double t = navcpp::mm::gentleman_mm(
                         m, cfg, navcpp::mm::StaggerMode::kDirect, a, b, c)
                         .seconds;
    runs.add_row({"MPI Gentleman", "forward, direct (single step)",
                  TextTable::num(t)});
  }
  {
    navcpp::machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    const double t = navcpp::mm::gentleman_mm(
                         m, cfg, navcpp::mm::StaggerMode::kStepwise, a, b, c)
                         .seconds;
    runs.add_row({"MPI Cannon", "forward, stepwise (N-1 neighbor rounds)",
                  TextTable::num(t)});
  }
  {
    navcpp::machine::SimMachine m(9, cfg.testbed.lan);
    BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
    const double t =
        navcpp::mm::navp_mm_2d(m, cfg,
                               navcpp::mm::Navp2dVariant::kPhaseShifted, a, b,
                               c)
            .seconds;
    runs.add_row({"NavP 2D phase", "reverse (carriers' first hops)",
                  TextTable::num(t)});
  }
  std::printf("%s\n", runs.str().c_str());
  std::printf("expected shape: reverse <= 2 phases always; forward needs 3\n"
              "unless the PE count is a power of two; stepwise staggering\n"
              "costs the most end-to-end.\n");
  return 0;
}
