// Reproduces Table 1: performance on 3 PEs (1-D network of workstations).
//
// Columns: Sequential, NavP 1D DSC, NavP 1D pipeline, NavP 1D phase,
// ScaLAPACK (our SUMMA stand-in).  Paper values are printed next to the
// simulated ones; speedups are relative to the in-core sequential time
// (the paper curve-fits the starred rows because the real sequential runs
// thrashed — bench_table2 reproduces that methodology explicitly).
#include <cstdio>
#include <utility>
#include <vector>

#include "harness/experiments.h"
#include "harness/paper_data.h"
#include "harness/text_table.h"
#include "mm/common.h"

using navcpp::harness::Measured1D;
using navcpp::harness::TextTable;

int main() {
  std::printf("=== Table 1: 3 PEs, 1-D network ===\n");
  std::printf("paper testbed: SUN Blade 100 (502 MHz US-IIe), 100 Mbps "
              "Ethernet; simulated here\n\n");

  TextTable table({"N", "blk", "seq(s)", "variant", "paper(s)", "paper su",
                   "sim(s)", "sim su"});
  const navcpp::mm::MmConfig base;  // paper-calibrated testbed

  for (const auto& p : navcpp::harness::paper_table1()) {
    const Measured1D m =
        navcpp::harness::measure_1d_row(p.order, p.block, 3, base);
    const double seq = m.seq_in_core;
    auto add = [&](const char* name, double paper_s, double paper_su,
                   double sim_s) {
      table.add_row({std::to_string(p.order), std::to_string(p.block),
                     TextTable::num(seq), name, TextTable::num(paper_s),
                     TextTable::num(paper_su), TextTable::num(sim_s),
                     TextTable::num(seq / sim_s)});
    };
    add("NavP 1D DSC", p.dsc_s, p.dsc_su, m.dsc);
    add("NavP 1D pipeline", p.pipe_s, p.pipe_su, m.pipe);
    add("NavP 1D phase", p.phase_s, p.phase_su, m.phase);
    add("ScaLAPACK~SUMMA", p.scalapack_s, p.scalapack_su, m.summa);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: DSC ~0.9x (distributed *sequential*), "
              "pipeline ~2.4-2.9x, phase best ~2.7-3.0x of 3 PEs.\n");
  return 0;
}
