// Reproduces Table 2: 8 PEs, matrix order 9216 — the out-of-core case.
//
// The paper's point: at N=9216 the three matrices need ~2 GB while each
// workstation has 256 MB, so the sequential run thrashes (36534 s measured
// vs 13922 s curve-fitted in-core estimate), while 1D DSC partitions the
// data across 8 machines, fits in memory, and runs at 0.93x the *fitted*
// sequential speed — distributed sequential computing beats paging.
//
// We reproduce the full methodology: model the thrashing sequential run,
// fit a cubic over small in-core problems (the paper's least-squares
// technique), and run the simulated 1D DSC.
#include <cstdio>
#include <vector>

#include "harness/experiments.h"
#include "harness/paper_data.h"
#include "harness/text_table.h"
#include "mm/common.h"
#include "mm/sequential_mm.h"

using navcpp::harness::TextTable;

int main() {
  std::printf("=== Table 2: 8 PEs, N = 9216 (out-of-core sequential) ===\n\n");
  const navcpp::mm::MmConfig base;
  const auto& p = navcpp::harness::paper_table2();

  // The paper's curve-fit: small in-core runs -> cubic -> extrapolate.
  const std::vector<int> samples = {512, 768, 1024, 1536, 2048, 2560, 3072};
  const double fitted =
      navcpp::harness::curve_fit_sequential(base, samples, p.order);

  const auto m =
      navcpp::harness::measure_1d_row(p.order, p.block, 8, base);

  TextTable table({"quantity", "paper(s)", "sim(s)"});
  table.add_row({"sequential, actual run (thrashing)",
                 TextTable::num(p.seq_measured_s),
                 TextTable::num(m.seq_actual)});
  table.add_row({"sequential, curve-fitted in-core",
                 TextTable::num(p.seq_fitted_s), TextTable::num(fitted)});
  table.add_row({"NavP 1D DSC on 8 PEs", TextTable::num(p.dsc_s),
                 TextTable::num(m.dsc)});
  table.add_row({"DSC speedup vs fitted", TextTable::num(p.dsc_su),
                 TextTable::num(fitted / m.dsc)});
  table.add_row({"DSC speedup vs actual run",
                 TextTable::num(p.seq_measured_s / p.dsc_s),
                 TextTable::num(m.seq_actual / m.dsc)});
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: thrashing blows the sequential run up ~2.6x; "
              "DSC runs at ~0.9x the in-core estimate and therefore ~2.4x "
              "faster than the paging run.\n");
  return 0;
}
