// Reproduces section 5, point 2: cache behaviour.
//
//   "The NavP and the sequential programs have a similar cache performance
//    because ... there is an algorithmic block that would stay in the
//    cache for the duration of computation ... this cache performance of
//    NavP can account for as much as a 4% improvement over MPI."
//
// We ablate the calibrated cache model: run Gentleman's algorithm with the
// MPI profile (all three blocks frequently fresh: -4% GEMM throughput) and
// with the NavP/sequential profile (one operand resident), and show the
// end-to-end difference is bounded by the modeled 4%.
#include <cstdio>

#include "harness/text_table.h"
#include "machine/sim_machine.h"
#include "mm/gentleman_mm.h"
#include "mm/navp_mm_2d.h"

using navcpp::harness::TextTable;
using navcpp::linalg::BlockGrid;
using navcpp::linalg::PhantomStorage;

namespace {

double run_gentleman(const navcpp::mm::MmConfig& cfg) {
  navcpp::machine::SimMachine m(9, cfg.testbed.lan);
  BlockGrid<PhantomStorage> a(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> b(cfg.order, cfg.block_order);
  BlockGrid<PhantomStorage> c(cfg.order, cfg.block_order);
  return navcpp::mm::gentleman_mm(m, cfg, navcpp::mm::StaggerMode::kDirect,
                                  a, b, c)
      .seconds;
}

}  // namespace

int main() {
  std::printf("=== Section 5.2: cache-profile ablation (3x3 PEs) ===\n\n");
  TextTable table({"N", "blk", "MPI w/ cache penalty(s)",
                   "MPI w/o penalty(s)", "end-to-end delta"});
  for (int order : {1536, 3072, 4608}) {
    navcpp::mm::MmConfig with_penalty;
    with_penalty.order = order;
    with_penalty.block_order = 128;
    navcpp::mm::MmConfig no_penalty = with_penalty;
    no_penalty.testbed.cache_penalty = 0.0;

    const double slow = run_gentleman(with_penalty);
    const double fast = run_gentleman(no_penalty);
    table.add_row({std::to_string(order), "128", TextTable::num(slow),
                   TextTable::num(fast),
                   TextTable::num(100.0 * (slow - fast) / slow, 2) + "%"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf("expected shape: the all-fresh cache profile costs the MPI\n"
              "code up to ~4%% end-to-end, matching the paper's estimate\n"
              "(the delta is below 4%% where communication, not GEMM\n"
              "throughput, is on the critical path).\n");
  return 0;
}
